"""Tests for the crossbar fleet pool lifecycle."""

import numpy as np
import pytest

from repro.crossbar.ops import AnalogMatrixOperator
from repro.exceptions import ServiceError
from repro.obs.tracer import RecordingTracer
from repro.reliability.probe import ProbePolicy
from repro.service.pool import CrossbarPool, MemberState
from repro.service.resilience import BreakerPolicy, BreakerState


MATRIX = np.array([[1.0, 0.5], [0.25, 1.0]])


def programmer(rng, tracer):
    return AnalogMatrixOperator(MATRIX, rng=rng, tracer=tracer)


def make_pool(size=2, **kwargs):
    kwargs.setdefault("rng", np.random.default_rng(0))
    return CrossbarPool(size, **kwargs)


class TestAcquire:
    def test_first_acquire_is_cold(self):
        pool = make_pool()
        member, warm = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(1)
        )
        assert not warm
        assert member.state is MemberState.BUSY
        assert member.fingerprint == "fp"
        assert member.operator is not None

    def test_matching_fingerprint_is_warm_and_reuses_operator(self):
        pool = make_pool()
        member, _ = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(1)
        )
        operator = member.operator
        pool.release(member)
        again, warm = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(2)
        )
        assert warm
        assert again is member
        assert again.operator is operator  # no reprogram happened

    def test_warm_acquire_reattaches_rng_and_tracer(self):
        pool = make_pool()
        member, _ = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(1)
        )
        pool.release(member)
        rng = np.random.default_rng(9)
        tracer = RecordingTracer()
        member, warm = pool.acquire(
            "fp", programmer, rng=rng, tracer=tracer
        )
        assert warm
        assert member.operator.rng is rng
        assert member.operator.array.rng is rng
        assert member.operator.tracer is tracer
        assert member.operator.array.tracer is tracer

    def test_mismatched_fingerprint_prefers_empty_member(self):
        pool = make_pool(size=2)
        first, _ = pool.acquire(
            "fp1", programmer, rng=np.random.default_rng(1)
        )
        pool.release(first)
        second, warm = pool.acquire(
            "fp2", programmer, rng=np.random.default_rng(2)
        )
        assert not warm
        assert second is not first  # the EMPTY member, no eviction

    def test_eviction_replaces_lru_idle_member(self):
        tracer = RecordingTracer()
        pool = make_pool(size=1, tracer=tracer)
        member, _ = pool.acquire(
            "fp1", programmer, rng=np.random.default_rng(1)
        )
        pool.release(member)
        evicted, warm = pool.acquire(
            "fp2", programmer, rng=np.random.default_rng(2)
        )
        assert not warm
        assert evicted is member
        assert evicted.fingerprint == "fp2"
        assert tracer.counters["pool.evictions"] == 1

    def test_exclusion_and_exhaustion(self):
        pool = make_pool(size=1)
        member, _ = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(1)
        )
        pool.release(member)
        none, warm = pool.acquire(
            "fp",
            programmer,
            rng=np.random.default_rng(2),
            exclude={member.member_id},
        )
        assert none is None and not warm

    def test_busy_member_not_schedulable(self):
        pool = make_pool(size=1)
        pool.acquire("fp", programmer, rng=np.random.default_rng(1))
        none, _ = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(2)
        )
        assert none is None

    def test_release_requires_busy(self):
        pool = make_pool()
        with pytest.raises(ServiceError, match="release"):
            pool.release(pool.members[0])


class TestDrainRecoverRetire:
    def test_drain_then_recover_returns_member_to_service(self):
        tracer = RecordingTracer()
        pool = make_pool(probe=ProbePolicy(), tracer=tracer)
        member, _ = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(1)
        )
        pool.release(member)
        pool.drain(member)
        assert member.state is MemberState.DRAINING
        assert pool.recover(member)
        assert member.state is MemberState.IDLE
        assert tracer.counters["pool.drains"] == 1
        assert tracer.counters["pool.recoveries"] == 1

    def test_recover_requires_draining(self):
        pool = make_pool()
        with pytest.raises(ServiceError, match="recover"):
            pool.recover(pool.members[0])

    def test_sticky_fault_forces_retirement(self):
        tracer = RecordingTracer()
        pool = make_pool(
            probe=ProbePolicy(), max_drains=2, tracer=tracer
        )
        member, _ = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(1)
        )
        pool.release(member)
        pool.inject_fault(member.member_id, 1.0, sticky=True)
        pool.drain(member)
        # Every recover cycle reprograms, reapplies the hard fault,
        # and fails the probe — until the drain budget retires it.
        assert not pool.recover(member)
        assert member.state is MemberState.RETIRED
        assert member.drains == 2
        assert tracer.counters["pool.retirements"] == 1
        assert pool.active_members() == 1

    def test_soft_fault_heals_in_one_cycle(self):
        pool = make_pool(probe=ProbePolicy())
        member, _ = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(1)
        )
        pool.release(member)
        pool.inject_fault(member.member_id, 1.0, sticky=False)
        pool.drain(member)
        assert pool.recover(member)
        assert member.state is MemberState.IDLE

    def test_retired_member_never_acquired(self):
        pool = make_pool(size=1, probe=ProbePolicy(), max_drains=0)
        member, _ = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(1)
        )
        pool.release(member)
        pool.drain(member)
        assert not pool.recover(member)
        none, _ = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(2)
        )
        assert none is None


class TestFaultInjection:
    def test_fault_on_programmed_member_breaks_probe(self):
        pool = make_pool()
        member, _ = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(1)
        )
        pool.inject_fault(member.member_id, 1.0)
        actual = member.operator.array.actual_conductances
        assert np.all(actual == 0.0)
        # Nominal state untouched: the probe sees the mismatch.
        assert member.operator.array.nominal_conductances.max() > 0

    def test_pending_fault_applies_after_first_program(self):
        pool = make_pool()
        pool.inject_fault(0, 1.0)
        member, _ = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(1)
        )
        assert member.member_id == 0
        assert np.all(member.operator.array.actual_conductances == 0.0)
        # Non-sticky: consumed by the programming it poisoned.
        assert member.pending_fault is None

    def test_busy_injection_tags_inflight_job(self):
        # Injecting into a BUSY member corrupts the job in flight: the
        # member records the fault so the service can attribute the
        # attempt's failure to the injection in its post-mortem.
        pool = make_pool()
        member, _ = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(1)
        )
        assert member.state is MemberState.BUSY
        pool.inject_fault(member.member_id, 0.5, sticky=True)
        assert member.inflight_fault == "stuck_off:0.5:sticky"
        # Consuming pops exactly once.
        assert member.consume_inflight_fault() == "stuck_off:0.5:sticky"
        assert member.consume_inflight_fault() is None

    def test_idle_injection_does_not_tag(self):
        pool = make_pool()
        member, _ = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(1)
        )
        pool.release(member)
        pool.inject_fault(member.member_id, 0.5)
        assert member.inflight_fault is None

    def test_drift_perturbs_without_zeroing(self):
        pool = make_pool()
        member, _ = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(1)
        )
        before = member.operator.array.actual_conductances.copy()
        pool.inject_drift(member.member_id, 0.2)
        after = member.operator.array.actual_conductances
        assert not np.allclose(before, after)
        assert np.all(after >= 0)
        assert member.inflight_fault == "drift:0.2"


class TestCircuitBreaker:
    def make_breaker_pool(self, **kwargs):
        kwargs.setdefault(
            "breaker",
            BreakerPolicy(failure_threshold=2, cooldown_ticks=3),
        )
        kwargs.setdefault("tracer", RecordingTracer())
        return make_pool(size=1, **kwargs)

    def run_once(self, pool, success):
        member, _ = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(1)
        )
        if member is None:
            return None
        pool.release(member)
        pool.note_result(member, success)
        return member

    def test_consecutive_failures_open_the_breaker(self):
        pool = self.make_breaker_pool()
        member = self.run_once(pool, success=False)
        assert member.breaker.state is BreakerState.CLOSED
        self.run_once(pool, success=False)
        assert member.breaker.state is BreakerState.OPEN
        assert pool.tracer.counters["pool.breaker.opened"] == 1
        assert pool.tracer.gauges["pool.breaker.state.0"] == 2

    def test_open_breaker_blocks_placement_until_cooldown(self):
        pool = self.make_breaker_pool()
        self.run_once(pool, success=False)
        member = self.run_once(pool, success=False)
        # OPEN: the next placements are rejected (cooldown_ticks=3,
        # counted in acquire calls; the opening tick was #2).
        assert self.run_once(pool, success=True) is None
        assert self.run_once(pool, success=True) is None
        assert pool.tracer.counters["pool.breaker.rejections"] == 2
        # Tick 5 - opened tick 2 >= 3: HALF_OPEN probe admitted.
        probe = self.run_once(pool, success=True)
        assert probe is member
        assert member.breaker.state is BreakerState.CLOSED
        assert pool.tracer.counters["pool.breaker.half_open"] == 1
        assert pool.tracer.counters["pool.breaker.closed"] == 1
        assert pool.tracer.gauges["pool.breaker.state.0"] == 0

    def test_failed_probe_reopens(self):
        pool = self.make_breaker_pool()
        self.run_once(pool, success=False)
        member = self.run_once(pool, success=False)
        self.run_once(pool, success=True)  # rejected, tick 3
        self.run_once(pool, success=True)  # rejected, tick 4
        assert self.run_once(pool, success=False) is member  # probe fails
        assert member.breaker.state is BreakerState.OPEN
        assert pool.tracer.counters["pool.breaker.reopened"] == 1

    def test_success_resets_consecutive_failures(self):
        pool = self.make_breaker_pool()
        member = self.run_once(pool, success=False)
        self.run_once(pool, success=True)
        self.run_once(pool, success=False)
        assert member.breaker.state is BreakerState.CLOSED

    def test_transition_log_reconciles_with_counters(self):
        pool = self.make_breaker_pool()
        self.run_once(pool, success=False)
        member = self.run_once(pool, success=False)
        self.run_once(pool, success=True)
        self.run_once(pool, success=True)
        self.run_once(pool, success=True)
        transitions = [(old, new) for _, old, new in member.breaker.transitions]
        assert transitions == [
            (BreakerState.CLOSED, BreakerState.OPEN),
            (BreakerState.OPEN, BreakerState.HALF_OPEN),
            (BreakerState.HALF_OPEN, BreakerState.CLOSED),
        ]
        counters = pool.tracer.counters
        opens = sum(
            1 for _, _, new in member.breaker.transitions
            if new is BreakerState.OPEN
        )
        assert counters["pool.breaker.opened"] == opens

    def test_no_breaker_policy_never_gates(self):
        pool = make_pool(size=1, tracer=RecordingTracer())
        member, _ = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(1)
        )
        pool.release(member)
        for _ in range(10):
            pool.note_result(member, False)
        again, _ = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(2)
        )
        assert again is member


class TestLifecycleEdgeCases:
    def test_retired_member_ignored_by_lru_eviction_in_full_pool(self):
        # A RETIRED member is never the LRU-eviction victim even when
        # every other member is IDLE with a mismatched fingerprint.
        tracer = RecordingTracer()
        pool = make_pool(
            size=3, probe=ProbePolicy(), max_drains=0, tracer=tracer
        )
        doomed, _ = pool.acquire(
            "fp0", programmer, rng=np.random.default_rng(1)
        )
        pool.release(doomed)
        pool.drain(doomed)
        assert not pool.recover(doomed)  # budget 0: retires immediately
        # Fill the remaining members so the pool has no EMPTY slots.
        others = []
        for fp in ("fp1", "fp2"):
            member, _ = pool.acquire(
                fp, programmer, rng=np.random.default_rng(2)
            )
            others.append(member)
        for member in others:
            pool.release(member)
        # A new fingerprint must evict an IDLE member, not the retiree
        # (whose last_used is the *oldest* in the pool).
        placed, warm = pool.acquire(
            "fp3", programmer, rng=np.random.default_rng(3)
        )
        assert not warm
        assert placed is not doomed
        assert doomed.state is MemberState.RETIRED
        assert tracer.counters["pool.evictions"] == 1

    def test_retirement_racing_cache_hit_never_hands_out_stale_member(self):
        # The retiree still *records* fingerprint "fp" when its drain
        # budget runs out mid-batch; a warm lookup for "fp" must not
        # match it (state gates before fingerprint).
        pool = make_pool(size=2, probe=ProbePolicy(), max_drains=1)
        member, _ = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(1)
        )
        pool.release(member)
        pool.inject_fault(member.member_id, 1.0, sticky=True)
        pool.drain(member)
        assert not pool.recover(member)
        assert member.state is MemberState.RETIRED
        assert member.fingerprint == "fp"  # stale cache identity
        placed, warm = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(2)
        )
        assert placed is not member
        assert not warm  # cold program on the survivor, not a stale hit

    def test_renormalize_on_member_remapped_mid_drain(self):
        # recover() rebuilds the operator (the REMAP rung): the member
        # must come back with a *fresh* operator whose scale state is
        # coherent — renormalize on it is a no-op-sized write, and a
        # warm acquire reuses it without reprogramming.
        pool = make_pool(probe=ProbePolicy(), max_drains=2)
        member, _ = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(1)
        )
        stale = member.operator
        pool.release(member)
        pool.inject_fault(member.member_id, 1.0, sticky=False)
        pool.drain(member)
        assert pool.recover(member)
        rebuilt = member.operator
        assert rebuilt is not stale  # remapped, not patched
        report = rebuilt.renormalize()
        assert report.cells_written == 0  # fresh map is already normal
        again, warm = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(2)
        )
        assert warm and again.operator is rebuilt


class TestAudit:
    def _programmed_pool(self, size=3, **kwargs):
        kwargs.setdefault("probe", ProbePolicy())
        tracer = RecordingTracer()
        pool = make_pool(size=size, tracer=tracer, **kwargs)
        members = []
        for k in range(size):
            member, _ = pool.acquire(
                f"fp-{k}", programmer, rng=np.random.default_rng(10 + k)
            )
            members.append(member)
        for member in members:
            pool.release(member)
        return pool, tracer

    def test_audit_reports_match_serial_probes(self):
        from repro.reliability.probe import probe_operator

        pool, tracer = self._programmed_pool()
        twin, _ = self._programmed_pool()
        serial_rng = np.random.default_rng(0)  # same seed as make_pool
        reports = pool.audit()
        expected = {
            member.member_id: probe_operator(
                member.operator,
                twin.probe,
                serial_rng,
                label=f"pool-{member.member_id}",
            )
            for member in twin.members
        }
        assert reports == expected
        assert tracer.counters["pool.audits"] == 1

    def test_audit_flags_and_drains_faulty_member(self):
        pool, tracer = self._programmed_pool()
        pool.inject_fault(1, 1.0)
        reports = pool.audit(drain_unhealthy=True)
        assert not reports[1].healthy
        assert pool.members[1].state is MemberState.DRAINING
        assert pool.members[0].state is MemberState.IDLE
        assert reports[0].healthy and reports[2].healthy
        assert tracer.counters["pool.audit_failures"] == 1
        assert tracer.counters["pool.drains"] == 1

    def test_audit_without_policy_rejected(self):
        pool = make_pool(size=1)
        with pytest.raises(ServiceError, match="probe policy"):
            pool.audit()

    def test_audit_of_unprogrammed_pool_is_empty(self):
        pool = make_pool(size=2, probe=ProbePolicy())
        assert pool.audit() == {}
