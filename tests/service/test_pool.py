"""Tests for the crossbar fleet pool lifecycle."""

import numpy as np
import pytest

from repro.crossbar.ops import AnalogMatrixOperator
from repro.exceptions import ServiceError
from repro.obs.tracer import RecordingTracer
from repro.reliability.probe import ProbePolicy
from repro.service.pool import CrossbarPool, MemberState


MATRIX = np.array([[1.0, 0.5], [0.25, 1.0]])


def programmer(rng, tracer):
    return AnalogMatrixOperator(MATRIX, rng=rng, tracer=tracer)


def make_pool(size=2, **kwargs):
    kwargs.setdefault("rng", np.random.default_rng(0))
    return CrossbarPool(size, **kwargs)


class TestAcquire:
    def test_first_acquire_is_cold(self):
        pool = make_pool()
        member, warm = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(1)
        )
        assert not warm
        assert member.state is MemberState.BUSY
        assert member.fingerprint == "fp"
        assert member.operator is not None

    def test_matching_fingerprint_is_warm_and_reuses_operator(self):
        pool = make_pool()
        member, _ = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(1)
        )
        operator = member.operator
        pool.release(member)
        again, warm = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(2)
        )
        assert warm
        assert again is member
        assert again.operator is operator  # no reprogram happened

    def test_warm_acquire_reattaches_rng_and_tracer(self):
        pool = make_pool()
        member, _ = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(1)
        )
        pool.release(member)
        rng = np.random.default_rng(9)
        tracer = RecordingTracer()
        member, warm = pool.acquire(
            "fp", programmer, rng=rng, tracer=tracer
        )
        assert warm
        assert member.operator.rng is rng
        assert member.operator.array.rng is rng
        assert member.operator.tracer is tracer
        assert member.operator.array.tracer is tracer

    def test_mismatched_fingerprint_prefers_empty_member(self):
        pool = make_pool(size=2)
        first, _ = pool.acquire(
            "fp1", programmer, rng=np.random.default_rng(1)
        )
        pool.release(first)
        second, warm = pool.acquire(
            "fp2", programmer, rng=np.random.default_rng(2)
        )
        assert not warm
        assert second is not first  # the EMPTY member, no eviction

    def test_eviction_replaces_lru_idle_member(self):
        tracer = RecordingTracer()
        pool = make_pool(size=1, tracer=tracer)
        member, _ = pool.acquire(
            "fp1", programmer, rng=np.random.default_rng(1)
        )
        pool.release(member)
        evicted, warm = pool.acquire(
            "fp2", programmer, rng=np.random.default_rng(2)
        )
        assert not warm
        assert evicted is member
        assert evicted.fingerprint == "fp2"
        assert tracer.counters["pool.evictions"] == 1

    def test_exclusion_and_exhaustion(self):
        pool = make_pool(size=1)
        member, _ = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(1)
        )
        pool.release(member)
        none, warm = pool.acquire(
            "fp",
            programmer,
            rng=np.random.default_rng(2),
            exclude={member.member_id},
        )
        assert none is None and not warm

    def test_busy_member_not_schedulable(self):
        pool = make_pool(size=1)
        pool.acquire("fp", programmer, rng=np.random.default_rng(1))
        none, _ = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(2)
        )
        assert none is None

    def test_release_requires_busy(self):
        pool = make_pool()
        with pytest.raises(ServiceError, match="release"):
            pool.release(pool.members[0])


class TestDrainRecoverRetire:
    def test_drain_then_recover_returns_member_to_service(self):
        tracer = RecordingTracer()
        pool = make_pool(probe=ProbePolicy(), tracer=tracer)
        member, _ = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(1)
        )
        pool.release(member)
        pool.drain(member)
        assert member.state is MemberState.DRAINING
        assert pool.recover(member)
        assert member.state is MemberState.IDLE
        assert tracer.counters["pool.drains"] == 1
        assert tracer.counters["pool.recoveries"] == 1

    def test_recover_requires_draining(self):
        pool = make_pool()
        with pytest.raises(ServiceError, match="recover"):
            pool.recover(pool.members[0])

    def test_sticky_fault_forces_retirement(self):
        tracer = RecordingTracer()
        pool = make_pool(
            probe=ProbePolicy(), max_drains=2, tracer=tracer
        )
        member, _ = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(1)
        )
        pool.release(member)
        pool.inject_fault(member.member_id, 1.0, sticky=True)
        pool.drain(member)
        # Every recover cycle reprograms, reapplies the hard fault,
        # and fails the probe — until the drain budget retires it.
        assert not pool.recover(member)
        assert member.state is MemberState.RETIRED
        assert member.drains == 2
        assert tracer.counters["pool.retirements"] == 1
        assert pool.active_members() == 1

    def test_soft_fault_heals_in_one_cycle(self):
        pool = make_pool(probe=ProbePolicy())
        member, _ = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(1)
        )
        pool.release(member)
        pool.inject_fault(member.member_id, 1.0, sticky=False)
        pool.drain(member)
        assert pool.recover(member)
        assert member.state is MemberState.IDLE

    def test_retired_member_never_acquired(self):
        pool = make_pool(size=1, probe=ProbePolicy(), max_drains=0)
        member, _ = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(1)
        )
        pool.release(member)
        pool.drain(member)
        assert not pool.recover(member)
        none, _ = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(2)
        )
        assert none is None


class TestFaultInjection:
    def test_fault_on_programmed_member_breaks_probe(self):
        pool = make_pool()
        member, _ = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(1)
        )
        pool.inject_fault(member.member_id, 1.0)
        actual = member.operator.array.actual_conductances
        assert np.all(actual == 0.0)
        # Nominal state untouched: the probe sees the mismatch.
        assert member.operator.array.nominal_conductances.max() > 0

    def test_pending_fault_applies_after_first_program(self):
        pool = make_pool()
        pool.inject_fault(0, 1.0)
        member, _ = pool.acquire(
            "fp", programmer, rng=np.random.default_rng(1)
        )
        assert member.member_id == 0
        assert np.all(member.operator.array.actual_conductances == 0.0)
        # Non-sticky: consumed by the programming it poisoned.
        assert member.pending_fault is None
