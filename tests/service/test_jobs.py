"""Tests for job specs and the deterministic problem derivation."""

import numpy as np
import pytest

from repro.service.jobs import (
    JobSpec,
    attempt_seed,
    build_problem,
    job_seed,
    read_jobs_jsonl,
    structure_seed,
    synthesize_jobs,
    write_jobs_jsonl,
)


class TestJobSpec:
    def test_rejects_empty_id(self):
        with pytest.raises(ValueError, match="job_id"):
            JobSpec(job_id="")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            JobSpec(job_id="a", kind="maximal")

    def test_dict_roundtrip(self):
        spec = JobSpec(
            job_id="j1", constraints=16, group=3, kind="infeasible",
            priority=2, variation=10.0,
        )
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_ignores_unknown_keys(self):
        spec = JobSpec.from_dict({"job_id": "j", "extra": "ignored"})
        assert spec.job_id == "j"


class TestSeeds:
    def test_attempt_seeds_differ_per_attempt(self):
        seeds = {attempt_seed(0, "job", k) for k in range(5)}
        assert len(seeds) == 5

    def test_seeds_are_stable(self):
        assert job_seed(7, "x") == job_seed(7, "x")
        assert attempt_seed(7, "x", 1) == attempt_seed(7, "x", 1)

    def test_structure_seed_ignores_job_id(self):
        a = JobSpec(job_id="a", group=1, constraints=12)
        b = JobSpec(job_id="b", group=1, constraints=12)
        assert structure_seed(0, a) == structure_seed(0, b)


class TestBuildProblem:
    def test_same_group_shares_constraint_matrix(self):
        a = build_problem(JobSpec(job_id="a", group=0, constraints=12), 0)
        b = build_problem(JobSpec(job_id="b", group=0, constraints=12), 0)
        np.testing.assert_array_equal(a.A, b.A)
        # b and c are per-job: they must differ.
        assert not np.array_equal(a.b, b.b)
        assert not np.array_equal(a.c, b.c)

    def test_infeasible_jobs_share_structure_too(self):
        a = build_problem(
            JobSpec(job_id="a", group=0, constraints=12, kind="infeasible"), 0
        )
        b = build_problem(
            JobSpec(job_id="b", group=0, constraints=12, kind="infeasible"), 0
        )
        np.testing.assert_array_equal(a.A, b.A)

    def test_groups_differ(self):
        a = build_problem(JobSpec(job_id="a", group=0, constraints=12), 0)
        b = build_problem(JobSpec(job_id="b", group=1, constraints=12), 0)
        assert not np.array_equal(a.A, b.A)

    def test_base_seed_changes_everything(self):
        spec = JobSpec(job_id="a", group=0, constraints=12)
        assert not np.array_equal(
            build_problem(spec, 0).A, build_problem(spec, 1).A
        )

    def test_derivation_is_pure(self):
        spec = JobSpec(job_id="a", group=0, constraints=12)
        first = build_problem(spec, 5)
        second = build_problem(spec, 5)
        np.testing.assert_array_equal(first.A, second.A)
        np.testing.assert_array_equal(first.b, second.b)
        np.testing.assert_array_equal(first.c, second.c)


class TestSynthesizeAndJsonl:
    def test_round_robin_groups(self):
        specs = synthesize_jobs(6, groups=3)
        assert [s.group for s in specs] == [0, 1, 2, 0, 1, 2]

    def test_infeasible_every(self):
        specs = synthesize_jobs(6, groups=1, infeasible_every=3)
        assert [s.kind == "infeasible" for s in specs] == [
            False, False, True, False, False, True,
        ]

    def test_jsonl_roundtrip(self, tmp_path):
        specs = synthesize_jobs(
            5, groups=2, constraints=10, variation=5.0, infeasible_every=2
        )
        path = write_jobs_jsonl(specs, tmp_path / "jobs.jsonl")
        assert list(read_jobs_jsonl(path)) == specs
