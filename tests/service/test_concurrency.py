"""Tests for concurrent dispatch, queue thread safety, and fairness."""

import json
import threading

import pytest

from repro.obs import RecordingTracer
from repro.service import (
    ConcurrentDispatcher,
    JobQueue,
    JobSpec,
    ServiceConfig,
    ServiceTelemetry,
    SolverService,
    TenantPolicy,
    synthesize_jobs,
)


def run_service(*, workers, jobs=12, tenants=(), telemetry=None, **overrides):
    config = ServiceConfig(
        pool_size=4,
        queue_depth=16,
        base_seed=7,
        workers=workers,
        tenants=tuple(tenants),
        **overrides,
    )
    service = SolverService(
        config, tracer=RecordingTracer(), telemetry=telemetry
    )
    specs = synthesize_jobs(
        jobs, groups=2, constraints=8, tenants=2 if tenants else 1
    )
    records, summary = service.batch(specs)
    return service, records, summary


class TestQueueConcurrency:
    def test_no_lost_or_duplicated_jobs_under_concurrent_submit(self):
        queue = JobQueue(max_depth=4096)
        per_thread, threads = 50, 8
        popped: list = []
        pop_lock = threading.Lock()
        barrier = threading.Barrier(threads + 1)

        def submitter(worker):
            barrier.wait()
            for index in range(per_thread):
                queue.submit(
                    JobSpec(job_id=f"w{worker}-{index:03d}", constraints=8)
                )

        def popper():
            barrier.wait()
            drained_strikes = 0
            while drained_strikes < 200:
                try:
                    job = queue.pop()
                except IndexError:
                    drained_strikes += 1
                    continue
                drained_strikes = 0
                with pop_lock:
                    popped.append(job.spec.job_id)

        workers = [
            threading.Thread(target=submitter, args=(w,))
            for w in range(threads)
        ] + [threading.Thread(target=popper)]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        while queue:
            popped.append(queue.pop().spec.job_id)
        expected = {
            f"w{w}-{i:03d}" for w in range(threads) for i in range(per_thread)
        }
        assert len(popped) == len(expected)  # nothing duplicated
        assert set(popped) == expected  # nothing lost

    def test_concurrent_requeue_preserves_aging(self):
        queue = JobQueue(max_depth=64, aging_step=1)
        jobs = [
            queue.submit(JobSpec(job_id=f"j{i}", constraints=8))
            for i in range(8)
        ]
        while queue:
            queue.pop()

        def requeuer(job):
            for _ in range(5):
                queue.requeue(job)
                queue.pop()

        threads = [
            threading.Thread(target=requeuer, args=(job,)) for job in jobs
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Every requeue bumped exactly once per trip: 5 trips each.
        assert all(job.priority_boost == 5 for job in jobs)

    def test_aged_job_still_overtakes_under_concurrency(self):
        queue = JobQueue(max_depth=64, aging_step=1)
        old = queue.submit(JobSpec(job_id="old", constraints=8, priority=0))
        queue.pop()
        for _ in range(3):
            queue.requeue(old)
            queue.pop()
        queue.requeue(old)
        queue.submit(JobSpec(job_id="fresh", constraints=8, priority=2))
        # boost 4 > fresh priority 2: the aged job runs first.
        assert queue.pop().spec.job_id == "old"


class TestTenantFairness:
    def two_tenant_queue(self, counts, weights=(1.0, 1.0)):
        queue = JobQueue(
            max_depth=4096,
            tenants=[
                TenantPolicy(tenant="a", weight=weights[0]),
                TenantPolicy(tenant="b", weight=weights[1]),
            ],
        )
        for tenant, count in zip(("a", "b"), counts):
            for index in range(count):
                queue.submit(
                    JobSpec(
                        job_id=f"{tenant}-{index:03d}",
                        constraints=8,
                        tenant=tenant,
                    )
                )
        return queue

    def test_ten_to_one_submit_rates_get_fair_completions(self):
        # Tenant a floods 10x the jobs of tenant b; with equal weights
        # the first 2*len(b) pops must alternate evenly — submit rate
        # buys no extra share while both are backlogged.
        queue = self.two_tenant_queue((100, 10))
        head = [queue.pop().spec.tenant for _ in range(20)]
        assert head.count("a") == head.count("b") == 10

    def test_weights_set_the_completion_ratio(self):
        queue = self.two_tenant_queue((90, 90), weights=(3.0, 1.0))
        head = [queue.pop().spec.tenant for _ in range(40)]
        assert head.count("a") == 30
        assert head.count("b") == 10

    def test_idle_tenant_forfeits_deficit(self):
        # b drains; while idle its credit must not bank.  When it
        # returns, the split goes back to even from that point on.
        queue = self.two_tenant_queue((50, 2))
        drained = [queue.pop().spec.tenant for _ in range(12)]
        assert drained.count("b") == 2  # b emptied early on
        for index in range(6):
            queue.submit(
                JobSpec(job_id=f"b-late-{index}", constraints=8, tenant="b")
            )
        tail = [queue.pop().spec.tenant for _ in range(12)]
        assert tail.count("b") == 6
        assert tail.count("a") == 6

    def test_blocked_tenant_is_skipped_with_deficit_frozen(self):
        queue = self.two_tenant_queue((4, 4))
        assert queue.pop(blocked={"a"}).spec.tenant == "b"
        assert queue.eligible(blocked={"a", "b"}) is False
        assert queue.pop(blocked={"a", "b"}) is None

    def test_service_level_weighted_fairness(self):
        policies = [
            TenantPolicy(tenant="tenant-00", weight=2.0),
            TenantPolicy(tenant="tenant-01", weight=1.0),
        ]
        _, records, summary = run_service(
            workers=2, jobs=12, tenants=policies
        )
        assert summary.succeeded == 12
        # Completion *order* is timing-dependent, but every job of
        # both tenants completes and bills to its own tenant.
        by_tenant = {}
        for record in records:
            by_tenant.setdefault(record.spec.tenant, []).append(record)
        assert set(by_tenant) == {"tenant-00", "tenant-01"}
        assert all(len(v) == 6 for v in by_tenant.values())


class TestConcurrentDispatch:
    def test_no_lost_or_duplicated_jobs(self):
        _, records, summary = run_service(workers=4, jobs=16)
        assert summary.jobs == 16
        job_ids = [record.spec.job_id for record in records]
        assert len(job_ids) == len(set(job_ids))  # no duplicates
        assert set(job_ids) == {f"job-{i:04d}" for i in range(16)}

    def test_telemetry_totals_reconcile_exactly(self):
        telemetry = ServiceTelemetry()
        service, records, summary = run_service(
            workers=4, jobs=12, telemetry=telemetry
        )
        record_energy = sum(record.energy_j for record in records)
        # Exact equality, not approx: live registry, record stream,
        # and trace replay accumulate in the same completion order
        # under the service lock.
        assert telemetry.energy_j_total == record_energy
        assert (
            telemetry.registry.counter_value("service.energy_j")
            == record_energy
        )
        assert (
            service.tracer.counters.get("service.energy_j", 0.0)
            == record_energy
        )
        assert telemetry.jobs == len(records) == 12
        assert (
            telemetry.registry.counter_value("service.jobs_completed")
            == summary.succeeded
        )

    def test_lock_contention_counters_populated(self):
        telemetry = ServiceTelemetry()
        run_service(workers=4, jobs=8, telemetry=telemetry)
        acquires = telemetry.registry.counter_value("service.lock.acquires")
        assert acquires > 0
        assert (
            telemetry.registry.counter_value("service.lock.wait_s") >= 0.0
        )

    def test_per_tenant_in_flight_cap_respected(self):
        # With every tenant capped at 1 in flight, the run still
        # completes everything — the dispatcher blocks capped tenants
        # instead of deadlocking or dropping.
        policies = [
            TenantPolicy(tenant="tenant-00", max_in_flight=1),
            TenantPolicy(tenant="tenant-01", max_in_flight=1),
        ]
        _, records, summary = run_service(
            workers=4, jobs=10, tenants=policies
        )
        assert summary.jobs == 10
        assert summary.succeeded == 10

    def test_worker_exception_propagates(self):
        service, _, _ = run_service(workers=2, jobs=2)

        def boom(*args, **kwargs):
            raise RuntimeError("injected dispatch failure")

        service._dispatch = boom
        service.queue.submit(JobSpec(job_id="doomed", constraints=8))
        with pytest.raises(RuntimeError, match="injected dispatch"):
            ConcurrentDispatcher(service).run()

    def test_process_executor_small_batch(self):
        _, records, summary = run_service(
            workers=2, jobs=4, executor="process"
        )
        assert summary.jobs == 4
        assert summary.succeeded == 4
        assert {r.spec.job_id for r in records} == {
            f"job-{i:04d}" for i in range(4)
        }


class TestSerialReplayContract:
    def serial_run(self, **overrides):
        tracer = RecordingTracer()
        config = ServiceConfig(
            pool_size=2, queue_depth=16, base_seed=7, workers=1, **overrides
        )
        service = SolverService(config, tracer=tracer)
        specs = synthesize_jobs(8, groups=2, constraints=8)
        records, _ = service.batch(specs)
        payload = "\n".join(
            json.dumps(record.to_dict(), sort_keys=True)
            for record in records
        )
        events = [event["name"] for event in tracer.event_dicts()]
        return payload, events, tracer.counters

    def test_workers_1_replays_byte_identical(self):
        first = self.serial_run()
        second = self.serial_run()
        assert first[0] == second[0]  # records, byte for byte
        assert first[1] == second[1]  # trace event stream
        assert first[2] == second[2]  # counter totals

    def test_device_latency_never_changes_records(self):
        baseline = self.serial_run()
        paced = self.serial_run(device_latency_s=0.005)
        assert baseline[0] == paced[0]
        assert baseline[1] == paced[1]

    def test_concurrent_run_covers_the_same_jobs(self):
        _, serial_records, _ = run_service(workers=1, jobs=10)
        _, concurrent_records, _ = run_service(workers=4, jobs=10)
        assert {r.spec.job_id for r in serial_records} == {
            r.spec.job_id for r in concurrent_records
        }
        assert all(r.success for r in concurrent_records)


class TestConfigValidation:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            ServiceConfig(workers=0)

    def test_executor_must_be_known(self):
        with pytest.raises(ValueError, match="executor"):
            ServiceConfig(executor="gpu")

    def test_device_latency_must_be_non_negative(self):
        with pytest.raises(ValueError, match="device_latency"):
            ServiceConfig(device_latency_s=-0.1)

    def test_tenant_policy_validation(self):
        with pytest.raises(ValueError, match="weight"):
            TenantPolicy(tenant="a", weight=0.0)
        with pytest.raises(ValueError, match="max_in_flight"):
            TenantPolicy(tenant="a", max_in_flight=0)
