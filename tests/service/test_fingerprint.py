"""Tests for the structural programming-cache fingerprint."""

import dataclasses

import numpy as np

from repro.core.settings import CrossbarSolverSettings
from repro.devices import variation_from_percent
from repro.reliability.verify import WriteVerifyPolicy
from repro.service.fingerprint import structural_fingerprint
from repro.service.jobs import JobSpec, build_problem


SETTINGS = CrossbarSolverSettings()


def problems_sharing_structure():
    a = build_problem(JobSpec(job_id="a", group=0, constraints=12), 0)
    b = build_problem(JobSpec(job_id="b", group=0, constraints=12), 0)
    return a, b


class TestFingerprint:
    def test_same_structure_same_fingerprint(self):
        a, b = problems_sharing_structure()
        assert structural_fingerprint(
            a, SETTINGS
        ) == structural_fingerprint(b, SETTINGS)

    def test_rhs_and_objective_do_not_enter(self):
        a, b = problems_sharing_structure()
        # Explicitly: same A, different b and c.
        assert not np.array_equal(a.b, b.b)
        assert structural_fingerprint(
            a, SETTINGS
        ) == structural_fingerprint(b, SETTINGS)

    def test_different_matrix_different_fingerprint(self):
        a = build_problem(JobSpec(job_id="a", group=0, constraints=12), 0)
        c = build_problem(JobSpec(job_id="c", group=1, constraints=12), 0)
        assert structural_fingerprint(
            a, SETTINGS
        ) != structural_fingerprint(c, SETTINGS)

    def test_hardware_settings_enter(self):
        a, _ = problems_sharing_structure()
        base = structural_fingerprint(a, SETTINGS)
        for override in (
            {"dac_bits": 6},
            {"variation": variation_from_percent(10)},
            {"scale_headroom": 3.0},
            {"row_scaling": True},
            {"initial_value": 2.0},
            {"write_verify": WriteVerifyPolicy(tolerance=0.05)},
        ):
            changed = dataclasses.replace(SETTINGS, **override)
            assert structural_fingerprint(a, changed) != base, override

    def test_algorithm_tolerances_do_not_enter(self):
        # Exit tolerances are digital-controller state, not programmed
        # conductances: loosening them must not bust the cache.
        a, _ = problems_sharing_structure()
        loose = dataclasses.replace(SETTINGS, eps_gap=1e-2)
        assert structural_fingerprint(
            a, loose
        ) == structural_fingerprint(a, SETTINGS)
