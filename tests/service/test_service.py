"""End-to-end tests of the solver service.

Includes the PR's acceptance scenarios: the programming cache
measurably reducing ``crossbar.cells_written`` on a batch with shared
structure, and a pool member failing mid-batch with zero lost jobs.
"""

import dataclasses

import pytest

from repro.core.result import SolveStatus
from repro.exceptions import QueueFullError
from repro.obs.tracer import RecordingTracer
from repro.service import (
    JobSpec,
    ServiceConfig,
    SolverService,
    synthesize_jobs,
)
from repro.service.pool import MemberState


def run_batch(specs, *, tracer=None, **overrides):
    config = ServiceConfig(**{"pool_size": 2, "base_seed": 7, **overrides})
    service = SolverService(config, tracer=tracer)
    records, summary = service.batch(specs)
    return service, records, summary


class TestBasicServing:
    def test_all_jobs_classified(self):
        specs = synthesize_jobs(
            8, groups=2, constraints=12, infeasible_every=4
        )
        _, records, summary = run_batch(specs)
        assert summary.jobs == 8
        assert summary.failed == 0
        by_id = {r.spec.job_id: r for r in records}
        for spec in specs:
            expected = (
                SolveStatus.INFEASIBLE
                if spec.kind == "infeasible"
                else SolveStatus.OPTIMAL
            )
            assert by_id[spec.job_id].result.status is expected

    def test_repeated_structure_served_warm(self):
        specs = synthesize_jobs(6, groups=1, constraints=12)
        _, records, summary = run_batch(specs, pool_size=1)
        assert summary.cold_acquires == 1
        assert summary.warm_acquires == 5
        assert records[0].warm is False
        assert all(r.warm for r in records[1:])

    def test_priority_runs_first(self):
        service = SolverService(
            ServiceConfig(pool_size=1, base_seed=7)
        )
        service.submit(JobSpec(job_id="low", constraints=10, priority=0))
        service.submit(JobSpec(job_id="high", constraints=10, priority=9))
        records = service.drain()
        assert [r.spec.job_id for r in records] == ["high", "low"]

    def test_deterministic_records(self):
        specs = synthesize_jobs(6, groups=2, constraints=12)
        _, first, _ = run_batch(specs)
        _, second, _ = run_batch(specs)
        assert [r.to_dict() for r in first] == [
            r.to_dict() for r in second
        ]


class TestProgrammingCacheSavings:
    """Acceptance: >=50 jobs, >=50% sharing structure, counter-proven."""

    @pytest.mark.slow
    def test_cache_reduces_cells_written(self):
        # 50 jobs over 5 groups: each structural program is reusable
        # by 9 later jobs (90% of placements can be warm).
        specs = synthesize_jobs(50, groups=5, constraints=12)

        cached_tracer = RecordingTracer()
        _, _, cached = run_batch(
            specs, tracer=cached_tracer, cache_enabled=True, pool_size=5
        )
        cold_tracer = RecordingTracer()
        _, _, cold = run_batch(
            specs, tracer=cold_tracer, cache_enabled=False, pool_size=5
        )

        assert cached.failed == 0 and cold.failed == 0
        assert cached.warm_acquires >= 25  # >=50% of 50 served warm
        assert cold.warm_acquires == 0
        cached_cells = cached_tracer.counters["crossbar.cells_written"]
        cold_cells = cold_tracer.counters["crossbar.cells_written"]
        assert cached_cells < cold_cells
        # The saving is the structural block, once per warm placement.
        assert cached.cells_written < cold.cells_written

    def test_cache_savings_small_batch(self):
        # The same comparison at smoke-test scale (not marked slow).
        specs = synthesize_jobs(10, groups=2, constraints=12)
        cached_tracer = RecordingTracer()
        _, _, cached = run_batch(specs, tracer=cached_tracer)
        cold_tracer = RecordingTracer()
        _, _, cold = run_batch(
            specs, tracer=cold_tracer, cache_enabled=False
        )
        assert cached.warm_acquires >= 5
        assert (
            cached_tracer.counters["crossbar.cells_written"]
            < cold_tracer.counters["crossbar.cells_written"]
        )


class TestFailureIsolation:
    """Acceptance: a member failing mid-batch loses zero jobs."""

    def test_faulty_member_jobs_rescheduled(self):
        specs = synthesize_jobs(12, groups=2, constraints=12)
        tracer = RecordingTracer()
        service = SolverService(
            ServiceConfig(pool_size=2, base_seed=7), tracer=tracer
        )
        for spec in specs[:4]:
            service.submit(spec)
        records = service.drain()
        # Mid-batch: poison member 0, then submit the rest.
        service.pool.inject_fault(0, 0.5)
        for spec in specs[4:]:
            service.submit(spec)
        records += service.drain()

        assert len(records) == 12
        assert all(r.success for r in records)
        rescheduled = [r for r in records if r.requeues > 0]
        assert rescheduled, "the poisoned member must fail some job"
        for record in rescheduled:
            first = record.attempts[0]
            assert first.status == "numerical_failure"
            assert first.failure_reason == "probe_unhealthy"
            assert first.member == 0
            # Rescheduled off the failed member, not back onto it.
            assert record.attempts[-1].member != 0
        assert tracer.counters["pool.drains"] >= 1
        assert tracer.counters["pool.recoveries"] >= 1
        assert tracer.counters["service.requeues"] >= 1
        # The drained member recovered and rejoined the fleet.
        assert service.pool.states()[0] is MemberState.IDLE

    def test_all_members_lost_falls_back_digitally(self):
        service = SolverService(
            ServiceConfig(
                pool_size=1,
                base_seed=7,
                max_drains=0,
                digital_fallback="reference",
            )
        )
        service.pool.inject_fault(0, 1.0, sticky=True)
        service.submit(JobSpec(job_id="only", constraints=10))
        records = service.drain()
        assert len(records) == 1
        record = records[0]
        assert record.success
        assert record.fallback
        assert record.result.status is SolveStatus.OPTIMAL
        assert service.pool.states()[0] is MemberState.RETIRED
        # Attempt history: probe rejection, then the fallback rung.
        assert record.attempts[0].failure_reason == "probe_unhealthy"
        assert record.attempts[-1].member is None

    def test_all_members_lost_without_fallback_reports_failure(self):
        service = SolverService(
            ServiceConfig(pool_size=1, base_seed=7, max_drains=0)
        )
        service.pool.inject_fault(0, 1.0, sticky=True)
        service.submit(JobSpec(job_id="only", constraints=10))
        records = service.drain()
        assert len(records) == 1
        assert not records[0].success
        assert records[0].result.failure_reason.value in (
            "probe_unhealthy",
            "no_capacity",
        )


class TestBackpressure:
    def test_submit_raises_when_full(self):
        service = SolverService(
            ServiceConfig(pool_size=1, queue_depth=2, base_seed=7)
        )
        service.submit(JobSpec(job_id="a", constraints=10))
        service.submit(JobSpec(job_id="b", constraints=10))
        with pytest.raises(QueueFullError):
            service.submit(JobSpec(job_id="c", constraints=10))
        assert service.try_submit(JobSpec(job_id="c", constraints=10)) is None

    def test_batch_larger_than_queue_completes(self):
        specs = synthesize_jobs(8, groups=1, constraints=10)
        _, records, summary = run_batch(
            specs, pool_size=1, queue_depth=2
        )
        assert summary.jobs == 8
        assert summary.failed == 0
        assert {r.spec.job_id for r in records} == {
            s.job_id for s in specs
        }


class TestTracing:
    def test_each_job_has_a_service_span(self):
        specs = synthesize_jobs(4, groups=1, constraints=10)
        tracer = RecordingTracer()
        run_batch(specs, tracer=tracer)
        spans = [
            e
            for e in tracer.events
            if getattr(e, "name", None) == "service.job"
        ]
        assert {s.attrs["job_id"] for s in spans} == {
            s.job_id for s in specs
        }
        for span in spans:
            assert "fingerprint" in span.attrs
            assert span.attrs["status"] == "optimal"

    def test_counters_absorbed_into_service_tracer(self):
        specs = synthesize_jobs(3, groups=1, constraints=10)
        tracer = RecordingTracer()
        run_batch(specs, tracer=tracer)
        assert tracer.counters["crossbar.cells_written"] > 0
        assert tracer.counters["analog.solves"] > 0
        assert tracer.counters["service.jobs_completed"] == 3

    def test_summary_render_mentions_key_figures(self):
        specs = synthesize_jobs(3, groups=1, constraints=10)
        _, _, summary = run_batch(specs)
        text = summary.render()
        assert "jobs/s" in text
        assert "cache hit rate" in text
        assert "cells written" in text


class TestConfigValidation:
    def test_rejects_bad_values(self):
        for bad in (
            {"pool_size": 0},
            {"queue_depth": 0},
            {"max_attempts": 0},
        ):
            with pytest.raises(ValueError):
                ServiceConfig(**bad)

    def test_per_job_variation_overrides_settings(self):
        service = SolverService(ServiceConfig(base_seed=7))
        spec = JobSpec(job_id="v", constraints=10, variation=10.0)
        settings = service._settings_for(spec)
        assert settings.variation.relative_magnitude > 0
        base = service._settings_for(
            dataclasses.replace(spec, variation=0.0)
        )
        assert base is service.config.settings


class TestFingerprintBatching:
    """Scheduler-level grouping of same-structure jobs (hot path)."""

    def test_batching_lifts_warm_hit_rate(self):
        specs = synthesize_jobs(18, groups=3, constraints=8)
        _, _, interleaved = run_batch(specs, batch_by_fingerprint=False)
        _, _, batched = run_batch(specs, batch_by_fingerprint=True)
        # Interleaved round-robin over 3 structures thrashes a 2-member
        # pool; batching runs each structure's jobs consecutively, so
        # only the first job of each group (and regroupings after pool
        # churn) places cold.
        assert batched.cache_hit_rate > interleaved.cache_hit_rate
        assert batched.warm_acquires >= 18 - 2 * 3
        assert batched.cells_written <= interleaved.cells_written
        assert batched.succeeded == interleaved.succeeded == 18

    def test_batching_respects_priority(self):
        specs = [
            JobSpec(job_id="bulk-0", constraints=8, group=0, priority=0),
            JobSpec(job_id="bulk-1", constraints=8, group=0, priority=0),
            JobSpec(job_id="urgent", constraints=8, group=1, priority=9),
        ]
        service = SolverService(
            ServiceConfig(pool_size=1, base_seed=7)
        )
        records, _ = service.batch(specs)
        assert records[0].spec.job_id == "urgent"

    def test_batching_off_without_cache(self):
        # cache_enabled=False forces unique fingerprints; batching must
        # not break the control arm (every placement stays cold).
        specs = synthesize_jobs(6, groups=2, constraints=8)
        _, _, summary = run_batch(
            specs, cache_enabled=False, batch_by_fingerprint=True
        )
        assert summary.warm_acquires == 0
        assert summary.cold_acquires == 6
