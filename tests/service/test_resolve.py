"""The warm re-solve tier: parameter-only updates without reprogramming.

Acceptance scenarios from the re-solve PR:

- warm re-solves write exactly **0** programming cells, proven by the
  per-attempt ``program_cells`` accounting and the service counters;
- warm and cold re-solves reach the same optimum (within solver
  tolerance — the trajectories differ, the answer must not);
- ``workers=1`` replay of a resolve stream is byte-identical;
- a resolve naming an unknown base job is a structured client error
  (:class:`~repro.exceptions.UnknownJobError`), never a crash;
- presolve-detected infeasibility surfaces as
  ``FailureReason.INFEASIBLE_PRESOLVE`` at zero programming cost.
"""

import json

import numpy as np
import pytest

from repro.baselines import solve_scipy
from repro.core.result import FailureReason, SolveStatus
from repro.exceptions import UnknownJobError
from repro.obs.tracer import RecordingTracer
from repro.service import (
    JobSpec,
    ResolveSpec,
    ServiceConfig,
    SolverService,
    build_resolve_problem,
    read_jobs_jsonl,
)
from repro.workloads import rolling_horizon_stream

SEED = 11


def make_service(*, tracer=None, **overrides):
    config = ServiceConfig(
        **{"pool_size": 1, "base_seed": SEED, **overrides}
    )
    return SolverService(config, tracer=tracer or RecordingTracer())


def stream_specs(steps=6, *, constraints=16, chain=True):
    _, specs = rolling_horizon_stream(
        steps, constraints=constraints, seed=SEED, chain=chain
    )
    return specs


class TestWarmResolve:
    def test_resolves_write_zero_programming_cells(self):
        service = make_service()
        records, summary = service.batch(stream_specs())
        assert summary.failed == 0
        resolves = [
            r for r in records if getattr(r.spec, "base_job_id", None)
        ]
        assert len(resolves) == 6
        for record in resolves:
            assert record.warm is True
            assert all(a.program_cells == 0 for a in record.attempts)
        counters = service.tracer.counters
        assert counters["service.resolve.submitted"] == 6
        assert counters["service.resolve.completed"] == 6
        assert counters["service.resolve.warm_placements"] == 6
        assert counters.get("service.resolve.program_cells", 0.0) == 0.0
        assert counters["service.resolve.cells_saved"] > 0

    def test_base_job_pays_the_only_program(self):
        service = make_service()
        records, _ = service.batch(stream_specs())
        base = records[0]
        assert getattr(base.spec, "base_job_id", None) is None
        assert base.attempts[0].program_cells > 0

    def test_warm_and_cold_reach_same_optimum(self):
        specs = stream_specs(4)
        warm_service = make_service()
        warm_records, _ = warm_service.batch(specs)
        cold_records, _ = make_service(
            cache_enabled=False, warm_start=False
        ).batch(specs)
        for warm, cold in zip(warm_records, cold_records):
            assert warm.spec.job_id == cold.spec.job_id
            assert warm.result.status is SolveStatus.OPTIMAL
            assert cold.result.status is SolveStatus.OPTIMAL
            # Same optimum as the digital reference, both arms.
            problem = warm_service._problems[warm.spec.job_id]
            truth = solve_scipy(problem).objective
            scale = max(1.0, abs(truth))
            assert abs(warm.result.objective - truth) / scale < 5e-2
            assert abs(cold.result.objective - truth) / scale < 5e-2

    def test_workers_one_replay_is_byte_identical(self):
        specs = stream_specs()
        first, _ = make_service().batch(specs)
        second, _ = make_service().batch(specs)
        assert [r.to_dict() for r in first] == [
            r.to_dict() for r in second
        ]

    def test_record_dict_carries_base_job_id(self):
        records, _ = make_service().batch(stream_specs(2))
        payload = records[-1].to_dict()
        assert payload["base_job_id"]
        assert json.dumps(payload)  # JSONL-serializable


class TestResolveApi:
    def test_resolve_auto_id_and_inheritance(self):
        service = make_service()
        service.submit(
            JobSpec(job_id="plant", constraints=14, group=2, priority=3)
        )
        pending = service.resolve("plant", perturb=0.05)
        assert pending.spec.job_id == "plant~r0001"
        assert pending.spec.base_job_id == "plant"
        assert pending.spec.constraints == 14
        assert pending.spec.group == 2
        records = service.drain()
        by_id = {r.spec.job_id: r for r in records}
        assert by_id["plant~r0001"].result.status is SolveStatus.OPTIMAL
        assert by_id["plant~r0001"].warm is True
        assert all(
            a.program_cells == 0
            for a in by_id["plant~r0001"].attempts
        )

    def test_resolve_explicit_parameters(self):
        service = make_service()
        service.submit(JobSpec(job_id="plant", constraints=12))
        base_problem = service._problems["plant"]
        new_b = tuple(float(v) * 1.01 for v in base_problem.b)
        pending = service.resolve("plant", new_b)
        spec = pending.spec
        problem = build_resolve_problem(spec, base_problem, SEED)
        np.testing.assert_array_equal(problem.b, np.asarray(new_b))
        np.testing.assert_array_equal(problem.c, base_problem.c)
        assert problem.A is base_problem.A

    def test_unknown_base_is_a_client_error(self):
        service = make_service()
        with pytest.raises(UnknownJobError, match="nope"):
            service.resolve("nope")
        with pytest.raises(UnknownJobError):
            service.try_submit(
                ResolveSpec(job_id="r1", base_job_id="nope")
            )
        with pytest.raises(UnknownJobError):
            service.submit(
                ResolveSpec(job_id="r2", base_job_id="nope")
            )

    def test_chained_resolve_of_a_resolve(self):
        service = make_service()
        service.submit(JobSpec(job_id="j0", constraints=12))
        service.resolve("j0", job_id="j1", perturb=0.02)
        service.resolve("j1", job_id="j2", perturb=0.02)
        records = service.drain()
        assert [r.spec.job_id for r in records] == ["j0", "j1", "j2"]
        assert all(r.result.status is SolveStatus.OPTIMAL for r in records)

    def test_jsonl_round_trip_mixed_batch(self, tmp_path):
        specs = stream_specs(3)
        path = tmp_path / "jobs.jsonl"
        with path.open("w") as fh:
            for spec in specs:
                fh.write(json.dumps(spec.to_dict()) + "\n")
        loaded = list(read_jobs_jsonl(path))
        assert [s.job_id for s in loaded] == [s.job_id for s in specs]
        assert isinstance(loaded[0], JobSpec)
        assert all(isinstance(s, ResolveSpec) for s in loaded[1:])
        records, summary = make_service().batch(loaded)
        assert summary.failed == 0
        assert len(records) == len(specs)


class TestPresolveScreen:
    def test_infeasible_job_rejected_at_zero_cost(self):
        tracer = RecordingTracer()
        service = make_service(tracer=tracer)
        service.submit(
            JobSpec(job_id="doomed", constraints=12, kind="infeasible")
        )
        (record,) = service.drain()
        assert record.result.status is SolveStatus.INFEASIBLE
        assert (
            record.result.failure_reason
            is FailureReason.INFEASIBLE_PRESOLVE
        )
        assert record.attempts[0].cells_written == 0
        assert record.attempts[0].program_cells == 0
        assert tracer.counters["service.presolve.infeasible"] == 1
        assert tracer.counters.get("crossbar.cells_written", 0.0) == 0.0

    def test_presolve_knob_restores_old_path(self):
        tracer = RecordingTracer()
        service = make_service(tracer=tracer, presolve=False)
        service.submit(
            JobSpec(job_id="doomed", constraints=12, kind="infeasible")
        )
        (record,) = service.drain()
        assert record.result.status is SolveStatus.INFEASIBLE
        # Without the screen the verdict comes from the array and
        # costs real programming writes.
        assert (
            record.result.failure_reason
            is not FailureReason.INFEASIBLE_PRESOLVE
        )
        assert tracer.counters["crossbar.cells_written"] > 0

    def test_warm_start_knob_disables_warm_starts(self):
        service = make_service(warm_start=False)
        records, summary = service.batch(stream_specs(3))
        assert summary.failed == 0
        resolves = [
            r for r in records if getattr(r.spec, "base_job_id", None)
        ]
        # Placement stays warm (the cache is on) but iterate reuse is
        # off: cold trajectories run noticeably longer than a polish.
        assert all(r.warm for r in resolves)
        assert all(r.result.iterations > 5 for r in resolves)
