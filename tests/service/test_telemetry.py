"""Tests for the live serving telemetry surface."""

import pytest

from repro.costmodel import estimate_energy_from_counts
from repro.obs import RecordingTracer
from repro.obs.recorder import read_flight_jsonl
from repro.service import (
    FaultCampaign,
    FaultEvent,
    ServiceConfig,
    ServiceTelemetry,
    SolverService,
    synthesize_jobs,
)
from repro.service.resilience import DegradationPolicy


def run_batch(telemetry, *, jobs=8, campaign=None, **overrides):
    config = ServiceConfig(
        pool_size=2,
        base_seed=7,
        digital_fallback="reference",
        campaign=campaign,
        **overrides,
    )
    service = SolverService(
        config, tracer=RecordingTracer(), telemetry=telemetry
    )
    specs = synthesize_jobs(jobs, groups=2, constraints=10)
    records, summary = service.batch(specs)
    return service, records, summary


class TestJobFolding:
    def test_every_job_counted(self):
        telemetry = ServiceTelemetry()
        _, records, summary = run_batch(telemetry)
        assert telemetry.jobs == len(records) == 8
        assert telemetry.succeeded == summary.succeeded
        assert (
            telemetry.registry.counter_value("service.jobs_submitted")
            == 8.0
        )

    def test_energy_matches_records_exactly(self):
        telemetry = ServiceTelemetry()
        _, records, summary = run_batch(telemetry)
        assert telemetry.energy_j_total == pytest.approx(
            sum(record.energy_j for record in records), rel=1e-12
        )
        assert summary.energy_j == pytest.approx(
            telemetry.energy_j_total, rel=1e-12
        )
        assert telemetry.registry.counter_value(
            "service.energy_j"
        ) == pytest.approx(summary.energy_j, rel=1e-12)

    def test_latency_histogram_counts_jobs(self):
        telemetry = ServiceTelemetry()
        _, records, _ = run_batch(telemetry)
        series = telemetry.registry.histogram("service.latency_s")
        timed = [r for r in records if r.elapsed_seconds > 0]
        assert series.cumulative.count == len(timed)

    def test_per_label_series_created(self):
        telemetry = ServiceTelemetry()
        run_batch(telemetry)
        names = {
            (series.name, series.labels)
            for series in telemetry.registry.histograms()
        }
        assert ("service.latency_s", ()) in names
        labeled = [
            labels
            for name, labels in names
            if name == "service.latency_s" and labels
        ]
        assert labeled, "expected per-priority/group labeled series"
        keys = {key for labels in labeled for key, _ in labels}
        assert keys == {"priority", "group", "tenant"}

    def test_slo_budgets_fed(self):
        telemetry = ServiceTelemetry()
        run_batch(telemetry)
        assert telemetry.slo.availability.total == 8
        assert telemetry.registry.gauge_value(
            "slo.availability.budget_remaining"
        ) == 1.0


class TestResolveCounters:
    def test_warm_resolves_reconcile_to_zero_program_cells(self):
        from repro.workloads import rolling_horizon_stream

        telemetry = ServiceTelemetry()
        config = ServiceConfig(pool_size=1, base_seed=7)
        service = SolverService(
            config, tracer=RecordingTracer(), telemetry=telemetry
        )
        _, specs = rolling_horizon_stream(5, constraints=12, seed=7)
        records, summary = service.batch(specs)
        assert summary.failed == 0
        assert (
            telemetry.registry.counter_value("service.resolve.jobs")
            == 5.0
        )
        # Telemetry's per-record program-cell fold must agree with the
        # tracer's counter: both zero on an all-warm stream.
        assert (
            telemetry.registry.counter_value(
                "service.resolve.program_cells"
            )
            == 0.0
        )
        assert (
            service.tracer.counters.get(
                "service.resolve.program_cells", 0.0
            )
            == 0.0
        )
        resolve_cells = sum(
            attempt.program_cells
            for record in records
            if getattr(record.spec, "base_job_id", None)
            for attempt in record.attempts
        )
        assert resolve_cells == 0


class TestTrips:
    def test_job_failure_trips_recorder(self, tmp_path):
        telemetry = ServiceTelemetry(flight_dir=tmp_path)
        # Every 2nd job infeasible-planted still *succeeds* (conclusive);
        # use a no-fallback config with a dead pool instead.
        service = SolverService(
            ServiceConfig(pool_size=1, base_seed=7, max_attempts=1),
            telemetry=telemetry,
        )
        service.pool.inject_fault(0, 1.0, sticky=True)
        specs = synthesize_jobs(2, groups=1, constraints=10)
        _, summary = service.batch(specs)
        assert summary.failed > 0
        assert telemetry.recorder.trips >= summary.failed
        assert telemetry.recorder.dumps
        events = read_flight_jsonl(telemetry.recorder.dumps[0])
        assert events[-1]["kind"] == "trip"
        assert events[-1]["reason"] == "job_failed"

    def test_tier_change_trips_recorder(self, tmp_path):
        telemetry = ServiceTelemetry(flight_dir=tmp_path)
        campaign = FaultCampaign(
            [
                FaultEvent(
                    at_job=2,
                    kind="stuck_cells",
                    member=m,
                    row_fraction=1.0,
                    sticky=True,
                )
                for m in (0, 1)
            ],
            name="storm",
            seed=7,
        )
        telemetry_policy = DegradationPolicy(window=8, min_samples=4)
        run_batch(
            telemetry,
            jobs=16,
            campaign=campaign,
            degradation=telemetry_policy,
        )
        tier_trips = [
            e
            for e in telemetry.recorder.events
            if e["kind"] == "trip" and e["reason"] == "tier_change"
        ]
        assert tier_trips, "expected a brownout tier change"
        assert any(
            "tier_change" in dump.name
            for dump in telemetry.recorder.dumps
        )

    def test_breaker_open_trips_recorder(self):
        telemetry = ServiceTelemetry()
        telemetry.on_breaker(1, "closed", "open", tick=12)
        assert telemetry.breaker_states[1] == "open"
        assert telemetry.recorder.trips == 1
        assert telemetry.recorder.events[-1]["reason"] == "breaker_open"
        assert "brk=O" in telemetry.stats_line()


class TestDeterminismContract:
    def test_energy_is_replayable(self):
        first = ServiceTelemetry()
        second = ServiceTelemetry()
        _, records_a, _ = run_batch(first)
        _, records_b, _ = run_batch(second)
        assert [r.energy_j for r in records_a] == [
            r.energy_j for r in records_b
        ]
        assert [r.to_dict() for r in records_a] == [
            r.to_dict() for r in records_b
        ]

    def test_wall_clock_fields_not_serialized(self):
        telemetry = ServiceTelemetry()
        _, records, _ = run_batch(telemetry)
        payload = records[0].to_dict()
        assert "elapsed_seconds" not in payload
        assert "queue_wait_s" not in payload
        assert "energy_j" in payload

    def test_attempt_energy_matches_cost_model(self):
        telemetry = ServiceTelemetry()
        service, records, _ = run_batch(telemetry)
        record = records[0]
        attempt = record.attempts[0]
        assert attempt.energy_j > 0
        assert record.energy_j == pytest.approx(
            sum(a.energy_j for a in record.attempts)
        )
        # The pricing function is the shared cost-model helper.
        assert estimate_energy_from_counts(
            multiplies=0,
            solves=0,
            cells_written=0,
            write_energy_j=0.0,
            array_size=8,
            iterations=0,
            device=service.config.settings.device,
        ).total_j == 0.0


class TestStatsLine:
    def test_contains_all_advertised_fields(self):
        telemetry = ServiceTelemetry()
        run_batch(telemetry)
        line = telemetry.stats_line()
        for fragment in (
            "jobs=8",
            "jobs/s",
            "p50=",
            "p99=",
            "energy/job=",
            "q=0",
            "tier=NORMAL",
            "burn ",
        ):
            assert fragment in line, line

    def test_quantiles_fall_back_to_cumulative(self):
        t = {"now": 0.0}
        telemetry = ServiceTelemetry(
            clock=lambda: t["now"], window_s=6.0
        )
        telemetry.registry.observe("service.latency_s", 0.25)
        t["now"] = 1000.0  # window long empty
        p50_ms, p99_ms = telemetry._quantiles_ms()
        assert p50_ms == pytest.approx(250.0)
        assert p99_ms == pytest.approx(250.0)
