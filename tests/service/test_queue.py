"""Tests for the bounded priority job queue."""

import pytest

from repro.exceptions import QueueFullError, ReproError, ServiceError
from repro.service.jobs import JobSpec
from repro.service.queue import JobQueue


def spec(job_id, priority=0):
    return JobSpec(job_id=job_id, constraints=8, priority=priority)


class TestOrdering:
    def test_fifo_within_priority(self):
        queue = JobQueue()
        for name in ("a", "b", "c"):
            queue.submit(spec(name))
        assert [queue.pop().spec.job_id for _ in range(3)] == [
            "a", "b", "c",
        ]

    def test_higher_priority_first(self):
        queue = JobQueue()
        queue.submit(spec("low", priority=0))
        queue.submit(spec("high", priority=5))
        queue.submit(spec("mid", priority=2))
        assert [queue.pop().spec.job_id for _ in range(3)] == [
            "high", "mid", "low",
        ]

    def test_requeue_keeps_original_position(self):
        queue = JobQueue()
        first = queue.submit(spec("first"))
        queue.submit(spec("second"))
        popped = queue.pop()
        assert popped is first
        queue.requeue(popped)
        # The rescheduled job kept its sequence, so it runs again
        # before later submissions of the same priority.
        assert queue.pop() is first


class TestRequeueAging:
    def test_requeue_bumps_effective_priority(self):
        queue = JobQueue(aging_step=1)
        pending = queue.submit(spec("flaky", priority=0))
        queue.pop()
        queue.requeue(pending)
        assert pending.priority_boost == 1
        assert pending.effective_priority == 1

    def test_aged_job_overtakes_fresh_higher_priority_work(self):
        # Without aging, a repeatedly-failing priority-0 job starves
        # behind a steady stream of fresh priority-1 submissions.
        queue = JobQueue(aging_step=1)
        victim = queue.submit(spec("victim", priority=0))
        queue.submit(spec("fresh-0", priority=1))
        assert queue.pop().spec.job_id == "fresh-0"
        popped = queue.pop()
        assert popped is victim
        queue.requeue(victim)  # boost -> 1: ties with fresh priority 1
        queue.submit(spec("fresh-1", priority=1))
        # Tie at effective priority 1: victim's older sequence wins.
        assert queue.pop() is victim
        queue.requeue(victim)  # boost -> 2: now outranks priority 1
        queue.submit(spec("fresh-2", priority=1))
        assert queue.pop() is victim

    def test_zero_aging_step_preserves_legacy_ordering(self):
        queue = JobQueue(aging_step=0)
        pending = queue.submit(spec("a", priority=0))
        queue.submit(spec("b", priority=1))
        popped = queue.pop()
        assert popped.spec.job_id == "b"
        queue.pop()
        queue.requeue(pending)
        assert pending.effective_priority == 0


class TestAdmissionControl:
    def test_submit_raises_at_bound(self):
        queue = JobQueue(max_depth=2)
        queue.submit(spec("a"))
        queue.submit(spec("b"))
        with pytest.raises(QueueFullError):
            queue.submit(spec("c"))

    def test_queue_full_error_is_service_and_repro_error(self):
        queue = JobQueue(max_depth=1)
        queue.submit(spec("a"))
        with pytest.raises(ServiceError):
            queue.submit(spec("b"))
        with pytest.raises(ReproError):
            queue.submit(spec("c"))

    def test_try_submit_returns_none_when_full(self):
        queue = JobQueue(max_depth=1)
        assert queue.try_submit(spec("a")) is not None
        assert queue.try_submit(spec("b")) is None
        assert len(queue) == 1

    def test_requeue_exempt_from_bound(self):
        queue = JobQueue(max_depth=1)
        pending = queue.submit(spec("a"))
        popped = queue.pop()
        queue.submit(spec("b"))  # bound reached again
        queue.requeue(popped)  # must not raise: accepted jobs never drop
        assert len(queue) == 2
        assert pending is popped

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            JobQueue().pop()

    def test_bool_and_len(self):
        queue = JobQueue()
        assert not queue
        queue.submit(spec("a"))
        assert queue and len(queue) == 1


class TestFingerprintPreference:
    def test_prefer_picks_matching_fingerprint_within_priority(self):
        queue = JobQueue()
        for name, fp in (("a", "s1"), ("b", "s2"), ("c", "s1")):
            queue.submit(spec(name)).fingerprint = fp
        assert queue.pop(prefer="s1").spec.job_id == "a"
        # "c" shares the fingerprint and jumps ahead of "b".
        assert queue.pop(prefer="s1").spec.job_id == "c"
        assert queue.pop(prefer="s1").spec.job_id == "b"

    def test_prefer_never_violates_priority(self):
        queue = JobQueue()
        queue.submit(spec("low", priority=0)).fingerprint = "s1"
        queue.submit(spec("high", priority=5)).fingerprint = "s2"
        # The matching job sits at a lower priority: ignored.
        assert queue.pop(prefer="s1").spec.job_id == "high"
        assert queue.pop(prefer="s1").spec.job_id == "low"

    def test_prefer_none_and_unknown_fall_back_to_fifo(self):
        queue = JobQueue()
        queue.submit(spec("a")).fingerprint = "s1"
        queue.submit(spec("b")).fingerprint = "s2"
        assert queue.pop(prefer=None).spec.job_id == "a"
        assert queue.pop(prefer="zzz").spec.job_id == "b"

    def test_unstamped_jobs_never_match(self):
        queue = JobQueue()
        queue.submit(spec("a"))
        queue.submit(spec("b"))
        assert queue.pop(prefer=None).spec.job_id == "a"
        assert queue.pop(prefer="s1").spec.job_id == "b"
