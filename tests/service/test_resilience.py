"""Tests for the fault-tolerance layer: deadlines, backoff, breakers,
brownout degradation, and chaos campaigns."""

import dataclasses
import json

import pytest

from repro.core.result import FailureReason
from repro.obs.tracer import RecordingTracer
from repro.service.jobs import JobSpec, synthesize_jobs
from repro.service.resilience import (
    BackoffPolicy,
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    Deadline,
    DegradationController,
    DegradationPolicy,
    DegradationTier,
    FaultCampaign,
    FaultEvent,
    stuck_storm,
)
from repro.service.service import (
    ServiceConfig,
    SolverService,
    default_serving_settings,
)


class FakeClock:
    """Injectable clock: advances only when the test says so."""

    def __init__(self, start=100.0):
        self.t = start

    def now(self):
        return self.t

    def advance(self, seconds):
        self.t += seconds


class TestDeadline:
    def test_expires_exactly_at_budget(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock.now)
        assert not deadline.expired
        assert deadline.remaining_s() == pytest.approx(1.0)
        clock.advance(0.5)
        assert not deadline.expired
        clock.advance(0.5)
        assert deadline.expired
        assert deadline.remaining_s() == 0.0

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            Deadline(0.0)
        with pytest.raises(ValueError):
            Deadline(-1.0)


class TestBackoffPolicy:
    def test_deterministic_and_seeded(self):
        policy = BackoffPolicy()
        a = policy.delay_s(7, "job-0001", 1)
        b = policy.delay_s(7, "job-0001", 1)
        assert a == b
        # Different jobs failing at the same attempt do not stampede.
        assert policy.delay_s(7, "job-0002", 1) != a

    def test_exponential_growth_capped(self):
        policy = BackoffPolicy(
            base_s=0.1, multiplier=2.0, max_s=0.4, jitter=0.0
        )
        assert policy.delay_s(0, "j", 1) == pytest.approx(0.1)
        assert policy.delay_s(0, "j", 2) == pytest.approx(0.2)
        assert policy.delay_s(0, "j", 3) == pytest.approx(0.4)
        assert policy.delay_s(0, "j", 9) == pytest.approx(0.4)  # capped

    def test_jitter_shrinks_within_bounds(self):
        policy = BackoffPolicy(base_s=1.0, multiplier=1.0, jitter=0.5)
        for attempt in range(1, 20):
            delay = policy.delay_s(3, "j", attempt)
            assert 0.5 <= delay <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base_s=0.0)
        with pytest.raises(ValueError):
            BackoffPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(max_s=0.01, base_s=0.05)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            BackoffPolicy().delay_s(0, "j", 0)


class TestCircuitBreakerUnit:
    def test_threshold_and_cooldown(self):
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=2, cooldown_ticks=5)
        )
        breaker.record_failure(1)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(2)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(4)  # 4 - 2 < 5
        assert breaker.allow(7)  # cooldown elapsed: HALF_OPEN probe
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success(7)
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_needs_enough_successes(self):
        breaker = CircuitBreaker(
            BreakerPolicy(
                failure_threshold=1,
                cooldown_ticks=1,
                half_open_successes=2,
            )
        )
        breaker.record_failure(1)
        assert breaker.allow(2)
        breaker.record_success(2)
        assert breaker.state is BreakerState.HALF_OPEN  # one of two
        breaker.record_success(3)
        assert breaker.state is BreakerState.CLOSED

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerPolicy(cooldown_ticks=0)
        with pytest.raises(ValueError):
            BreakerPolicy(half_open_successes=0)


class TestDegradationController:
    def policy(self, **kwargs):
        kwargs.setdefault("window", 4)
        kwargs.setdefault("min_samples", 4)
        kwargs.setdefault("enter_thresholds", (0.25, 0.5, 0.75))
        kwargs.setdefault("exit_margin", 0.15)
        kwargs.setdefault("cooldown", 2)
        return DegradationPolicy(**kwargs)

    def test_quiet_until_min_samples(self):
        controller = DegradationController(self.policy())
        for _ in range(3):
            controller.record(False)
        assert controller.tier is DegradationTier.NORMAL

    def test_sheds_immediately_possibly_multiple_tiers(self):
        tracer = RecordingTracer()
        controller = DegradationController(self.policy(), tracer=tracer)
        for _ in range(4):
            controller.record(False)
        # Window failure rate 1.0 >= 0.75: straight to DIGITAL_ONLY.
        assert controller.tier is DegradationTier.DIGITAL_ONLY
        assert tracer.counters["service.degradation.sheds"] == 1
        assert tracer.gauges["service.degradation.tier"] == 3

    def test_recovers_one_tier_at_a_time_with_hysteresis(self):
        tracer = RecordingTracer()
        controller = DegradationController(self.policy(), tracer=tracer)
        for _ in range(4):
            controller.record(False)
        assert controller.tier is DegradationTier.DIGITAL_ONLY
        for _ in range(20):
            controller.record(True)
        assert controller.tier is DegradationTier.NORMAL
        # Every downward transition was exactly one tier.
        downward = [
            (old, new)
            for _, old, new in controller.transitions
            if new < old
        ]
        assert all(old - new == 1 for old, new in downward)
        assert tracer.counters["service.degradation.recoveries"] == 3

    def test_hysteresis_blocks_recovery_at_the_boundary(self):
        # Rate hovering just below the entry threshold must NOT close
        # the tier: exit requires threshold - exit_margin.
        controller = DegradationController(
            self.policy(window=10, min_samples=10, cooldown=0)
        )
        for _ in range(10):
            controller.record(False)
        assert controller.tier is DegradationTier.DIGITAL_ONLY
        # Bring the rate to 0.7: below 0.75 but above 0.75 - 0.15.
        for _ in range(3):
            controller.record(True)
        assert controller.failure_rate() == pytest.approx(0.7)
        assert controller.tier is DegradationTier.DIGITAL_ONLY

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            DegradationPolicy(window=1)
        with pytest.raises(ValueError):
            DegradationPolicy(min_samples=0)
        with pytest.raises(ValueError):
            DegradationPolicy(enter_thresholds=(0.5, 0.25, 0.75))
        with pytest.raises(ValueError):
            DegradationPolicy(exit_margin=0.0)


class TestFaultCampaign:
    def test_event_validation(self):
        with pytest.raises(ValueError, match="kind"):
            FaultEvent(at_job=0, kind="meteor")
        with pytest.raises(ValueError, match="member"):
            FaultEvent(at_job=0, kind="stuck_cells")
        with pytest.raises(ValueError, match="row_fraction"):
            FaultEvent(
                at_job=0, kind="stuck_cells", member=0, row_fraction=0.0
            )
        with pytest.raises(ValueError, match="at_job"):
            FaultEvent(at_job=-1, kind="queue_pulse")
        with pytest.raises(ValueError, match="magnitude"):
            FaultEvent(at_job=0, kind="drift", member=0, magnitude=0.0)

    def test_events_sorted_and_indexed(self):
        campaign = FaultCampaign(
            [
                FaultEvent(at_job=5, kind="queue_pulse"),
                FaultEvent(at_job=1, kind="stuck_cells", member=0),
                FaultEvent(at_job=5, kind="drift", member=1),
            ]
        )
        assert [e.at_job for e in campaign.events] == [1, 5, 5]
        assert len(campaign.events_at(5)) == 2
        assert campaign.events_at(2) == ()
        assert [e.at_job for e in campaign.unfired_after(1)] == [5, 5]

    def test_json_round_trip(self, tmp_path):
        campaign = FaultCampaign(
            stuck_storm([0, 1, 2], start=2, stride=3, sticky=True),
            name="storm",
            seed=11,
        )
        path = campaign.to_json(tmp_path / "scenario.json")
        loaded = FaultCampaign.from_json(path)
        assert loaded.to_dict() == campaign.to_dict()
        assert loaded.name == "storm" and loaded.seed == 11
        assert [e.at_job for e in loaded.events] == [2, 5, 8]

    def test_from_dict_ignores_unknown_keys(self):
        campaign = FaultCampaign.from_dict(
            {
                "name": "x",
                "events": [
                    {
                        "at_job": 0,
                        "kind": "queue_pulse",
                        "future_field": True,
                    }
                ],
            }
        )
        assert len(campaign) == 1


def service_config(**kwargs):
    kwargs.setdefault("pool_size", 2)
    kwargs.setdefault("base_seed", 7)
    return ServiceConfig(**kwargs)


def small_jobs(count, **kwargs):
    kwargs.setdefault("groups", 2)
    kwargs.setdefault("constraints", 9)
    return synthesize_jobs(count, **kwargs)


class TestServiceDeadlines:
    def test_expired_deadline_fails_terminally_without_fallback(self):
        clock = FakeClock()
        config = service_config(
            pool_size=1, digital_fallback="reference", max_attempts=5
        )
        tracer = RecordingTracer()
        service = SolverService(config, tracer=tracer, clock=clock.now)
        # A sticky full fault: every analog attempt is probe-rejected.
        service.pool.inject_fault(0, 1.0, sticky=True)
        service.submit(
            JobSpec(job_id="doomed", constraints=9, deadline_s=1.0)
        )
        assert service._step() is None  # attempt 0 fails, requeued
        clock.advance(5.0)  # budget long gone
        record = service._step()
        assert record is not None
        assert (
            record.result.failure_reason is FailureReason.DEADLINE_EXCEEDED
        )
        # The caller has given up: no digital fallback runs.
        assert not record.fallback
        last = record.attempts[-1]
        assert last.failure_reason == "deadline_exceeded"
        assert last.member is None
        assert tracer.counters["service.deadline_exceeded"] == 1

    def test_config_default_deadline_applies(self):
        clock = FakeClock()
        config = service_config(pool_size=1, deadline_s=2.0)
        service = SolverService(config, clock=clock.now)
        service.pool.inject_fault(0, 1.0, sticky=True)
        service.submit(JobSpec(job_id="j", constraints=9))
        service._step()
        clock.advance(3.0)
        record = service._step()
        assert (
            record.result.failure_reason is FailureReason.DEADLINE_EXCEEDED
        )

    def test_no_deadline_means_unbounded(self):
        clock = FakeClock()
        service = SolverService(service_config(), clock=clock.now)
        service.submit(JobSpec(job_id="j", constraints=9))
        clock.advance(10_000.0)
        records = service.drain()
        assert records[0].success

    def test_elapsed_seconds_excluded_from_record_dict(self):
        clock = FakeClock()
        service = SolverService(service_config(), clock=clock.now)
        service.submit(JobSpec(job_id="j", constraints=9))
        record = service.drain()[0]
        assert record.elapsed_seconds == 0.0  # fake clock never moved
        data = record.to_dict()
        assert "elapsed_seconds" not in data
        assert "first_dispatch_s" not in json.dumps(data)


class TestServiceRetryBudgets:
    def test_spec_max_attempts_overrides_config(self):
        config = service_config(pool_size=1, max_attempts=5)
        service = SolverService(config)
        service.pool.inject_fault(0, 1.0, sticky=True)
        service.submit(
            JobSpec(job_id="j", constraints=9, max_attempts=2)
        )
        records = service.drain()
        analog = [a for a in records[0].attempts if not a.status == "rejected"]
        assert len(analog) <= 2

    def test_backoff_charged_on_requeued_attempts(self):
        config = service_config(pool_size=1, max_attempts=3)
        tracer = RecordingTracer()
        service = SolverService(config, tracer=tracer)
        service.pool.inject_fault(0, 1.0, sticky=True)
        service.submit(JobSpec(job_id="j", constraints=9))
        record = service.drain()[0]
        requeued = [a for a in record.attempts if a.backoff_s > 0]
        assert requeued  # failed attempts that were retried carry delay
        total = sum(a.backoff_s for a in record.attempts)
        assert tracer.counters["service.backoff_seconds"] == pytest.approx(
            total
        )


class TestServiceBrownout:
    def degraded_service(self):
        settings = dataclasses.replace(
            default_serving_settings(), max_iterations=40
        )
        config = service_config(
            pool_size=1,
            max_attempts=1,
            probe=None,  # fail slow: failures feed the window
            digital_fallback="reference",
            settings=settings,
            degradation=DegradationPolicy(
                window=4,
                min_samples=2,
                enter_thresholds=(0.25, 0.5, 0.75),
                exit_margin=0.15,
                cooldown=2,
            ),
            breaker=None,  # isolate the degradation path
        )
        tracer = RecordingTracer()
        service = SolverService(config, tracer=tracer)
        # Unprobed sticky corruption: every analog attempt fails slow.
        service.pool.inject_fault(0, 1.0, sticky=True)
        return service, tracer

    def test_sheds_to_digital_only_and_routes_around_analog(self):
        service, tracer = self.degraded_service()
        for spec in small_jobs(8, groups=1):
            service.submit(spec)
        records = service.drain()
        assert tracer.counters["service.degradation.sheds"] >= 1
        browned = [
            r
            for r in records
            if r.fallback and r.attempts[0].member is None
        ]
        assert browned  # jobs routed straight to digital under brownout
        assert all(r.success for r in browned)
        assert all(
            a.tier == int(DegradationTier.DIGITAL_ONLY)
            for r in browned
            for a in r.attempts
        )
        assert (
            tracer.counters["service.degradation.browned_out"]
            == len(browned)
        )

    def test_transitions_reconcile_with_counters(self):
        service, tracer = self.degraded_service()
        for spec in small_jobs(10, groups=1):
            service.submit(spec)
        service.drain()
        controller = service.degradation
        sheds = sum(
            1 for _, old, new in controller.transitions if new > old
        )
        recoveries = sum(
            1 for _, old, new in controller.transitions if new < old
        )
        assert tracer.counters.get("service.degradation.sheds", 0) == sheds
        assert (
            tracer.counters.get("service.degradation.recoveries", 0)
            == recoveries
        )

    def test_skip_verify_tier_keeps_cache_identity(self):
        # A tier-1 brownout strips write-verify but must keep the
        # admission-stamped fingerprint, so warm placements survive.
        config = service_config()
        service = SolverService(config)
        spec = JobSpec(job_id="j", constraints=9)
        pending = service.submit(spec)
        stamped = pending.fingerprint
        assert stamped is not None
        # Force tier 1 and run: the fingerprint must not change.
        service.degradation.tier = DegradationTier.SKIP_VERIFY
        record = service.drain()[0]
        assert record.success
        assert pending.fingerprint == stamped
        assert record.attempts[0].tier == int(DegradationTier.SKIP_VERIFY)


class TestChaosAcceptance:
    def chaos_config(self, campaign):
        return service_config(
            pool_size=3,
            queue_depth=16,
            digital_fallback="reference",
            campaign=campaign,
        )

    def storm_campaign(self):
        events = stuck_storm([0, 1], start=3, stride=4, row_fraction=1.0)
        events.append(FaultEvent(at_job=12, kind="member_death", member=2))
        events.append(
            FaultEvent(at_job=20, kind="queue_pulse", jobs=4, constraints=9)
        )
        return FaultCampaign(events, name="acceptance", seed=7)

    def run_acceptance(self):
        tracer = RecordingTracer()
        service = SolverService(
            self.chaos_config(self.storm_campaign()), tracer=tracer
        )
        specs = synthesize_jobs(50, groups=5, constraints=9)
        records, summary = service.batch(specs)
        return service, tracer, specs, records, summary

    def test_zero_lost_jobs_under_storm(self):
        service, tracer, specs, records, summary = self.run_acceptance()
        submitted = {spec.job_id for spec in specs}
        finished = [r.spec.job_id for r in records]
        # Every accepted job produced exactly one record; pulse filler
        # jobs (chaos-generated) account for any extras.
        assert submitted <= set(finished)
        assert len(finished) == len(set(finished))
        extras = set(finished) - submitted
        assert all(job_id.startswith("pulse-") for job_id in extras)
        assert summary.jobs == len(records)
        assert tracer.counters["service.chaos.events"] == 4

    def test_every_failed_attempt_has_machine_readable_reason(self):
        _, _, _, records, _ = self.run_acceptance()
        valid = {reason.value for reason in FailureReason}
        for record in records:
            for attempt in record.attempts:
                assert attempt.failure_reason in valid
                if attempt.status not in ("optimal", "infeasible"):
                    assert attempt.failure_reason != "none"

    def test_identical_seed_and_scenario_replay_byte_identical(self):
        def run():
            service = SolverService(
                self.chaos_config(self.storm_campaign())
            )
            records, _ = service.batch(
                synthesize_jobs(50, groups=5, constraints=9)
            )
            return "\n".join(
                json.dumps(r.to_dict(), sort_keys=True) for r in records
            )

        assert run() == run()

    def test_busy_injection_attributed_on_attempt(self):
        # Fire a stuck-cell storm at the exact dispatch of a job so the
        # injection lands while the member is mid-flight... the pool
        # inject happens pre-pop, so drive the BUSY case directly
        # through the service's consume path instead.
        config = service_config(pool_size=1, max_attempts=1)
        service = SolverService(config)
        service.submit(JobSpec(job_id="j", constraints=9))

        original = service.pool.acquire

        def acquire_and_poison(*args, **kwargs):
            member, warm = original(*args, **kwargs)
            if member is not None:
                service.pool.inject_fault(
                    member.member_id, 1.0, sticky=False
                )
            return member, warm

        service.pool.acquire = acquire_and_poison
        record = service.drain()[0]
        assert record.attempts[0].injected_fault == "stuck_off:1"
        assert not record.attempts[0].warm
