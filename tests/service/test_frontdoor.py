"""Tests for the JSONL-over-HTTP front door."""

import json
import urllib.request

import pytest

from repro.service import (
    FrontDoor,
    ServiceConfig,
    ServiceTelemetry,
    SolverService,
    synthesize_jobs,
)


@pytest.fixture
def door():
    config = ServiceConfig(
        pool_size=2, queue_depth=8, base_seed=7, workers=2
    )
    service = SolverService(config, telemetry=ServiceTelemetry())
    door = FrontDoor(service)
    door.start()
    yield door
    door.stop()


def url(door, path):
    host, port = door.address
    return f"http://{host}:{port}{path}"


def post_jobs(door, specs):
    body = "".join(
        json.dumps(spec.to_dict()) + "\n" for spec in specs
    ).encode()
    request = urllib.request.Request(
        url(door, "/submit"), data=body, method="POST"
    )
    with urllib.request.urlopen(request) as response:
        return [
            json.loads(line)
            for line in response.read().decode().splitlines()
        ]


class TestSubmit:
    def test_acks_every_line(self, door):
        acks = post_jobs(door, synthesize_jobs(4, constraints=8))
        assert len(acks) == 4
        assert all(ack["accepted"] for ack in acks)
        assert [ack["job_id"] for ack in acks] == [
            f"job-{i:04d}" for i in range(4)
        ]

    def test_invalid_line_rejected_not_fatal(self, door):
        body = (
            b'{"job_id": "good", "constraints": 8}\n'
            b'{"job_id": "", "constraints": 8}\n'
            b"not json at all\n"
        )
        request = urllib.request.Request(
            url(door, "/submit"), data=body, method="POST"
        )
        with urllib.request.urlopen(request) as response:
            acks = [
                json.loads(line)
                for line in response.read().decode().splitlines()
            ]
        assert [ack["accepted"] for ack in acks] == [True, False, False]
        assert "error" in acks[1] and "error" in acks[2]

    def test_unknown_path_is_404(self, door):
        request = urllib.request.Request(
            url(door, "/nope"), data=b"{}", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 404


def post_lines(door, path, body):
    request = urllib.request.Request(
        url(door, path), data=body, method="POST"
    )
    try:
        with urllib.request.urlopen(request) as response:
            status = response.status
            payload = response.read()
    except urllib.error.HTTPError as error:
        status = error.code
        payload = error.read()
    return status, [
        json.loads(line) for line in payload.decode().splitlines()
    ]


class TestResolveEndpoint:
    def test_resolve_round_trip(self, door):
        (base_spec,) = synthesize_jobs(1, constraints=8)
        acks = post_jobs(door, [base_spec])
        assert acks[0]["accepted"]
        body = json.dumps(
            {
                "job_id": "step-0",
                "base_job_id": base_spec.job_id,
                "perturb": 0.02,
            }
        ).encode() + b"\n"
        status, acks = post_lines(door, "/resolve", body)
        assert status == 200
        assert acks == [{"job_id": "step-0", "accepted": True}]
        collected = {}
        while len(collected) < 2:
            with urllib.request.urlopen(
                url(door, f"/stream?since={len(collected)}&timeout=30")
            ) as response:
                for line in response.read().decode().splitlines():
                    record = json.loads(line)
                    collected[record["job_id"]] = record
        assert collected["step-0"]["status"] == "optimal"

    def test_unknown_base_is_structured_404(self, door):
        body = (
            b'{"job_id": "r0", "base_job_id": "never-submitted"}\n'
        )
        status, acks = post_lines(door, "/resolve", body)
        assert status == 404
        (ack,) = acks
        assert ack["accepted"] is False
        assert ack["code"] == 404
        assert "never-submitted" in ack["error"]
        # The door survives the rejection and keeps serving.
        with urllib.request.urlopen(url(door, "/healthz")) as response:
            assert json.loads(response.read())["status"] == "ok"

    def test_mixed_lines_keep_200_with_per_line_codes(self, door):
        (base_spec,) = synthesize_jobs(1, constraints=8)
        post_jobs(door, [base_spec])
        body = (
            json.dumps(
                {"job_id": "ok-step", "base_job_id": base_spec.job_id}
            ).encode()
            + b"\n"
            + b'{"job_id": "bad-step", "base_job_id": "ghost"}\n'
            + b"not json\n"
        )
        status, acks = post_lines(door, "/resolve", body)
        assert status == 200
        assert [ack["accepted"] for ack in acks] == [True, False, False]
        assert acks[1]["code"] == 404
        assert "error" in acks[2]

    def test_submit_rejects_resolve_lines(self, door):
        body = b'{"job_id": "r0", "base_job_id": "whatever"}\n'
        status, acks = post_lines(door, "/submit", body)
        assert status == 200
        (ack,) = acks
        assert ack["accepted"] is False
        assert "/resolve" in ack["error"]


class TestStream:
    def test_streams_completions_with_sequence_numbers(self, door):
        post_jobs(door, synthesize_jobs(3, constraints=8))
        collected = {}
        while len(collected) < 3:
            with urllib.request.urlopen(
                url(door, f"/stream?since={len(collected)}&timeout=30")
            ) as response:
                for line in response.read().decode().splitlines():
                    record = json.loads(line)
                    collected[record["seq"]] = record
        assert sorted(collected) == [0, 1, 2]
        assert {r["job_id"] for r in collected.values()} == {
            f"job-{i:04d}" for i in range(3)
        }
        assert all(r["status"] == "optimal" for r in collected.values())

    def test_bad_query_is_400(self, door):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(url(door, "/stream?since=abc"))
        assert excinfo.value.code == 400


class TestStatusEndpoints:
    def test_healthz(self, door):
        with urllib.request.urlopen(url(door, "/healthz")) as response:
            payload = json.loads(response.read())
        assert payload["status"] == "ok"
        assert {"queue_depth", "completed", "tier"} <= set(payload)

    def test_stats_reflects_completions(self, door):
        post_jobs(door, synthesize_jobs(2, constraints=8))
        # Wait for both completions, then read the stats surface.
        with urllib.request.urlopen(
            url(door, "/stream?since=1&timeout=30")
        ):
            pass
        with urllib.request.urlopen(url(door, "/stats")) as response:
            payload = json.loads(response.read())
        assert payload["jobs"] >= 2
        assert "jobs=" in payload["line"]


class TestLifecycle:
    def test_stop_drains_accepted_jobs(self):
        config = ServiceConfig(
            pool_size=2, queue_depth=16, base_seed=7, workers=2
        )
        door = FrontDoor(SolverService(config))
        door.start()
        acks = post_jobs(door, synthesize_jobs(6, constraints=8))
        assert all(ack["accepted"] for ack in acks)
        records = door.stop()
        # An accepted job is never lost: all six complete.
        assert {record.spec.job_id for record in records} == {
            f"job-{i:04d}" for i in range(6)
        }

    def test_port_zero_binds_ephemeral(self, door):
        host, port = door.address
        assert host == "127.0.0.1"
        assert port > 0
