"""Markdown link check over the top-level docs and ``docs/``.

Every relative link in README / DESIGN / EXPERIMENTS and everything
under ``docs/`` (plus the file and module paths they name in
backticks) must resolve inside the repository, so the cross-reference
web the docs rely on cannot rot silently.  Links are resolved relative
to the document that contains them.  External http(s) links are not
fetched.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOCS = ("README.md", "DESIGN.md", "EXPERIMENTS.md") + tuple(
    str(path.relative_to(REPO))
    for path in sorted((REPO / "docs").glob("*.md"))
)

_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
# `path/to/file.ext`, `dir/` or bare `file.ext` spans in prose.
_CODE_PATH = re.compile(
    r"`((?:[\w.-]+/)+[\w.-]+\.(?:py|md|yml|json|toml)"
    r"|(?:[\w.-]+/)+"
    r"|[\w-]+\.(?:py|md|yml|json|toml))`"
)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def doc_links(name: str) -> list[str]:
    return _LINK.findall((REPO / name).read_text())


@pytest.mark.parametrize("name", DOCS)
def test_relative_links_resolve(name):
    broken = []
    base = (REPO / name).parent
    text = (REPO / name).read_text()
    slugs = {github_slug(h) for h in _HEADING.findall(text)}
    for target in doc_links(name):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        if path_part:
            if not (base / path_part).exists():
                broken.append(f"{name}: missing file {target}")
                continue
            if anchor:
                other = (base / path_part).read_text()
                other_slugs = {
                    github_slug(h) for h in _HEADING.findall(other)
                }
                if anchor not in other_slugs:
                    broken.append(f"{name}: missing anchor {target}")
        elif anchor and anchor not in slugs:
            broken.append(f"{name}: missing anchor #{anchor}")
    assert not broken, broken


@pytest.mark.parametrize("name", DOCS)
def test_backticked_paths_exist(name):
    """File/directory paths quoted in the docs must exist."""
    text = (REPO / name).read_text()
    missing = []
    for path in set(_CODE_PATH.findall(text)):
        if "/" in path:
            candidates = (
                REPO / path,
                REPO / "src" / path,
                REPO / "src" / "repro" / path,
            )
            found = any(c.exists() for c in candidates)
        else:
            # Bare filename: anywhere in the tree counts.
            found = any(
                REPO.glob(f"**/{path}")
            ) or (REPO / path).exists()
        if not found:
            missing.append(f"{name}: `{path}`")
    assert not missing, missing
