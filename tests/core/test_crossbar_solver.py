"""Tests for Solver 1 (Algorithm 1, crossbar PDIP)."""

import numpy as np
import pytest

from repro.baselines import solve_scipy
from repro.core import (
    CrossbarPDIPSolver,
    CrossbarSolverSettings,
    SolveStatus,
    solve_crossbar,
)
from repro.devices import UniformVariation
from repro.workloads import random_feasible_lp, random_infeasible_lp


class TestOptimality:
    def test_tiny_lp(self, tiny_lp):
        result = solve_crossbar(tiny_lp, rng=np.random.default_rng(0))
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(12.0, rel=0.05)

    def test_ideal_hardware_accuracy_band(self, rng):
        # Paper Fig. 5(a): relative error well under 10%.
        for trial in range(3):
            problem = random_feasible_lp(15, rng=rng)
            truth = solve_scipy(problem)
            result = solve_crossbar(
                problem, rng=np.random.default_rng(trial)
            )
            assert result.status is SolveStatus.OPTIMAL
            error = abs(result.objective - truth.objective) / abs(
                truth.objective
            )
            assert error < 0.05

    def test_variation_accuracy_band(self, rng):
        settings = CrossbarSolverSettings(
            variation=UniformVariation(0.10)
        )
        problem = random_feasible_lp(15, rng=rng)
        truth = solve_scipy(problem)
        result = solve_crossbar(
            problem, settings, rng=np.random.default_rng(7)
        )
        assert result.status is SolveStatus.OPTIMAL
        error = abs(result.objective - truth.objective) / abs(
            truth.objective
        )
        assert error < 0.15

    def test_returned_point_nearly_feasible(self, small_feasible):
        result = solve_crossbar(
            small_feasible, rng=np.random.default_rng(1)
        )
        assert small_feasible.satisfies_relaxed_constraints(
            result.x, alpha=1.05
        )


class TestInfeasibility:
    def test_detects_planted_infeasibility(self, rng):
        problem = random_infeasible_lp(12, rng=rng)
        result = solve_crossbar(problem, rng=np.random.default_rng(3))
        assert result.status is SolveStatus.INFEASIBLE

    def test_detection_faster_than_solving(self, rng):
        feasible = random_feasible_lp(15, rng=rng)
        infeasible = random_infeasible_lp(15, rng=rng)
        solved = solve_crossbar(feasible, rng=np.random.default_rng(4))
        detected = solve_crossbar(
            infeasible, rng=np.random.default_rng(5)
        )
        assert detected.status is SolveStatus.INFEASIBLE
        assert detected.iterations <= 3 * max(solved.iterations, 1)


class TestMechanics:
    def test_counters_populated(self, small_feasible):
        result = solve_crossbar(
            small_feasible, rng=np.random.default_rng(2)
        )
        counters = result.crossbar
        assert counters is not None
        assert counters.multiplies >= result.iterations
        assert counters.solves >= 1
        assert counters.cells_written > 0
        assert counters.write_latency_s > 0
        assert counters.array_size > 2 * (
            small_feasible.n_variables + small_feasible.n_constraints
        )

    def test_trace_populated(self, small_feasible):
        solver = CrossbarPDIPSolver(
            small_feasible, rng=np.random.default_rng(2)
        )
        result = solver.solve(trace=True)
        assert len(result.trace) == result.iterations
        assert all(rec.theta > 0 for rec in result.trace)

    def test_deterministic_given_seed(self, small_feasible):
        first = solve_crossbar(
            small_feasible, rng=np.random.default_rng(11)
        )
        second = solve_crossbar(
            small_feasible, rng=np.random.default_rng(11)
        )
        assert first.objective == second.objective
        assert first.iterations == second.iterations

    def test_iteration_limit_respected(self, small_feasible):
        settings = CrossbarSolverSettings(
            max_iterations=3, retries=0, stall_iterations=100
        )
        result = solve_crossbar(
            small_feasible, settings, rng=np.random.default_rng(0)
        )
        assert result.iterations <= 3

    def test_ideal_converters_reach_tight_accuracy(self, rng):
        problem = random_feasible_lp(12, rng=rng)
        truth = solve_scipy(problem)
        clean = solve_crossbar(
            problem,
            CrossbarSolverSettings(dac_bits=None, adc_bits=None),
            rng=np.random.default_rng(8),
        )
        assert clean.status is SolveStatus.OPTIMAL
        error = abs(clean.objective - truth.objective) / abs(
            truth.objective
        )
        assert error < 0.02


class TestRecoveryOperatorReuse:
    def test_reprogram_rung_reuses_programmed_operator(self, small_feasible):
        settings = CrossbarSolverSettings(
            variation=UniformVariation(0.05)
        )
        solver = CrossbarPDIPSolver(
            small_feasible, settings, rng=np.random.default_rng(3)
        )
        cold, _ = solver._solve_once(rng=np.random.default_rng(3))
        operator = solver._last_operator
        assert operator is not None
        # The reprogram rung re-enters on the same operator: variation
        # redraw plus an O(N) diagonal reset, never a structural
        # rewrite — so the attempt's write count drops well below the
        # cold attempt's (which paid the full matrix program).
        warm, _ = solver._solve_once(
            rng=np.random.default_rng(4),
            operator=operator,
            redraw=np.random.default_rng(4),
        )
        assert solver._last_operator is operator
        assert warm.status is SolveStatus.OPTIMAL
        assert 0 < warm.crossbar.cells_written < cold.crossbar.cells_written

    def test_solve_resets_operator_cache(self, small_feasible):
        solver = CrossbarPDIPSolver(
            small_feasible, rng=np.random.default_rng(5)
        )
        first = solver.solve()
        assert first.status is SolveStatus.OPTIMAL
        cached = solver._last_operator
        assert cached is not None
        second = solver.solve()
        # A new solve() starts its ladder cold: the INITIAL attempt
        # builds a fresh operator rather than inheriting drifted state.
        assert solver._last_operator is not cached
        assert second.status is SolveStatus.OPTIMAL
