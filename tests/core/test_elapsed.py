"""Every solver stamps elapsed_seconds from the shared clock."""

import numpy as np
import pytest

from repro.baselines import solve_scipy, solve_simplex, timed_solve_scipy
from repro.core import solve_crossbar, solve_crossbar_large_scale
from repro.core.reference_pdip import solve_reference
from repro.core.result import SolverResult, SolveStatus
from repro.workloads import random_feasible_lp


@pytest.fixture(scope="module")
def problem():
    return random_feasible_lp(12, rng=np.random.default_rng(3))


@pytest.mark.parametrize(
    "solve",
    [
        solve_reference,
        solve_scipy,
        solve_simplex,
        lambda p: solve_crossbar(p, rng=np.random.default_rng(1)),
        lambda p: solve_crossbar_large_scale(
            p, rng=np.random.default_rng(1)
        ),
    ],
    ids=["reference", "scipy", "simplex", "crossbar", "large_scale"],
)
def test_solvers_stamp_elapsed(problem, solve):
    result = solve(problem)
    assert result.status is SolveStatus.OPTIMAL
    assert result.elapsed_seconds > 0.0
    # Sanity ceiling: these are sub-second problems.
    assert result.elapsed_seconds < 60.0


def test_default_is_zero():
    result = SolverResult(
        status=SolveStatus.OPTIMAL,
        x=np.zeros(1),
        y=np.zeros(1),
        w=np.zeros(1),
        z=np.zeros(1),
        objective=0.0,
        iterations=0,
    )
    assert result.elapsed_seconds == 0.0


def test_timed_scipy_returns_results_own_elapsed(problem):
    result, elapsed = timed_solve_scipy(problem)
    assert elapsed == result.elapsed_seconds
    assert elapsed > 0.0
