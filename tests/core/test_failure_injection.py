"""Failure-injection tests: retry and classification paths.

The retry ("double checking") scheme and the failure classifications
are hard to hit deterministically through real hardware noise; these
tests inject failures at the operator boundary to pin the control
flow.
"""

import numpy as np
import pytest

from repro.core import (
    CrossbarPDIPSolver,
    CrossbarSolverSettings,
    FailureReason,
    LargeScaleCrossbarPDIPSolver,
    ScalableSolverSettings,
    SolveStatus,
)
from repro.crossbar.ops import AnalogMatrixOperator
from repro.exceptions import CrossbarSolveError


class FlakySolveOperator(AnalogMatrixOperator):
    """Operator whose solve() fails the first ``failures`` times."""

    remaining_failures = 0

    def solve(self, b):
        if type(self).remaining_failures > 0:
            type(self).remaining_failures -= 1
            raise CrossbarSolveError("injected failure")
        return super().solve(b)


@pytest.fixture
def flaky(monkeypatch):
    def arm(failures):
        FlakySolveOperator.remaining_failures = failures
        monkeypatch.setattr(
            "repro.core.crossbar_solver.AnalogMatrixOperator",
            FlakySolveOperator,
        )
        monkeypatch.setattr(
            "repro.core.scalable_solver.AnalogMatrixOperator",
            FlakySolveOperator,
        )

    return arm


class TestSolver1Retry:
    def test_retry_rescues_injected_failure(self, flaky, small_feasible):
        flaky(1)  # first attempt's first solve dies
        solver = CrossbarPDIPSolver(
            small_feasible,
            CrossbarSolverSettings(retries=2),
            rng=np.random.default_rng(0),
        )
        result = solver.solve()
        assert result.status is SolveStatus.OPTIMAL
        assert "retry" in result.message
        assert result.failure_reason is FailureReason.NONE
        assert len(result.attempts) == 2

    def test_no_retries_surfaces_failure(self, flaky, small_feasible):
        flaky(10)
        solver = CrossbarPDIPSolver(
            small_feasible,
            CrossbarSolverSettings(retries=0),
            rng=np.random.default_rng(0),
        )
        result = solver.solve()
        assert result.status is SolveStatus.NUMERICAL_FAILURE
        assert "injected" in result.message
        assert result.failure_reason is FailureReason.SINGULAR_SYSTEM

    def test_exhausted_retries_return_last_result(self, flaky,
                                                  small_feasible):
        flaky(100)
        solver = CrossbarPDIPSolver(
            small_feasible,
            CrossbarSolverSettings(retries=2),
            rng=np.random.default_rng(0),
        )
        result = solver.solve()
        assert result.status is SolveStatus.NUMERICAL_FAILURE
        assert result.failure_reason is FailureReason.SINGULAR_SYSTEM
        assert len(result.attempts) == 3
        assert all(
            a.failure_reason is FailureReason.SINGULAR_SYSTEM
            for a in result.attempts
        )


class TestSolver2Retry:
    def test_retry_rescues_injected_failure(self, flaky, small_feasible):
        flaky(1)
        solver = LargeScaleCrossbarPDIPSolver(
            small_feasible,
            ScalableSolverSettings(retries=2),
            rng=np.random.default_rng(0),
        )
        result = solver.solve()
        assert result.status is SolveStatus.OPTIMAL

    def test_failure_message_carries_cause(self, flaky, small_feasible):
        flaky(100)
        solver = LargeScaleCrossbarPDIPSolver(
            small_feasible,
            ScalableSolverSettings(retries=0),
            rng=np.random.default_rng(0),
        )
        result = solver.solve()
        assert result.status is SolveStatus.NUMERICAL_FAILURE
        assert "injected" in result.message
        assert result.failure_reason is FailureReason.SINGULAR_SYSTEM
        assert result.attempts[0].seed is not None
