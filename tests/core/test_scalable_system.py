"""Tests for Solver 2's system builders."""

import numpy as np
import pytest

from repro.core import ScalableNewtonSystem
from repro.workloads import random_feasible_lp


@pytest.fixture
def system(small_feasible):
    return ScalableNewtonSystem(small_feasible)


@pytest.fixture
def state(small_feasible, rng):
    m, n = small_feasible.A.shape
    return (
        rng.uniform(0.5, 2.0, n),
        rng.uniform(0.5, 2.0, m),
        rng.uniform(0.5, 2.0, m),
        rng.uniform(0.5, 2.0, n),
    )


class TestM1Assembly:
    def test_matrix_non_negative(self, system, state):
        x, y, w, z = state
        M = system.build_m1(x, y, w, z, with_coupling=True)
        assert M.min() >= 0.0

    def test_size(self, system, small_feasible):
        m, n = small_feasible.A.shape
        assert system.size_m1 == n + 2 * m + system.k_x

    def test_augmented_equals_signed_reduced_system(
        self, system, small_feasible, state
    ):
        # Solving the augmented non-negative M1 must give the same
        # (dx, dy) as the signed reduced system [A -W/Y; Z/X A'].
        x, y, w, z = state
        A = small_feasible.A
        m, n = A.shape
        ru, rl = system.coupling_diagonals(x, y, w, z)
        signed = np.zeros((m + n, m + n))
        signed[:m, :n] = A
        signed[:m, n:] = -np.diag(ru)
        signed[m:, :n] = np.diag(rl)
        signed[m:, n:] = A.T
        rhs = np.concatenate(
            [np.arange(1.0, m + 1) / m, np.arange(1.0, n + 1) / n]
        )
        reference = np.linalg.solve(signed, rhs)

        M = system.build_m1(x, y, w, z, with_coupling=True)
        r_aug = np.zeros(system.size_m1)
        r_aug[: m + n] = rhs
        delta = np.linalg.solve(M, r_aug)
        dx, dy = system.extract_steps_m1(delta)
        np.testing.assert_allclose(dx, reference[:n], rtol=1e-8)
        np.testing.assert_allclose(dy, reference[n:], rtol=1e-8)

    def test_multiply_matrix_identity(self, system, small_feasible, state):
        # M1 (without coupling) @ [x, y, p, q] = [Ax, A'y, 0, 0].
        x, y, w, z = state
        A = small_feasible.A
        m, n = A.shape
        M = system.build_m1(x, y, w, z, with_coupling=False)
        product = M @ system.state_vector_m1(x, y)
        np.testing.assert_allclose(product[:m], A @ x, rtol=1e-10)
        np.testing.assert_allclose(
            product[m:m + n], A.T @ y, rtol=1e-10
        )
        np.testing.assert_allclose(
            product[m + n:], np.zeros(system.size_m1 - m - n), atol=1e-12
        )

    def test_coupling_update_cells(self, system, small_feasible, state):
        x, y, w, z = state
        m, n = small_feasible.A.shape
        rows, cols, values = system.m1_coupling_update(x, y, w, z)
        assert rows.shape == (n + m,)
        M = system.build_m1(x, y, w, z, with_coupling=True)
        np.testing.assert_allclose(M[rows, cols], values)

    def test_residuals(self, system, small_feasible, state):
        x, y, w, z = state
        A = small_feasible.A
        m, n = A.shape
        mu = 0.1
        M = system.build_m1(x, y, w, z, with_coupling=False)
        product = M @ system.state_vector_m1(x, y)
        r = system.residual_m1(product, mu / x, mu / y)
        np.testing.assert_allclose(
            r[:m], small_feasible.b - A @ x - mu / y, rtol=1e-9
        )
        np.testing.assert_allclose(
            r[m:m + n],
            small_feasible.c - A.T @ y + mu / x,
            rtol=1e-9,
        )
        paper = system.paper_residual_m1(product, w, z)
        np.testing.assert_allclose(
            paper[:m], small_feasible.b - A @ x - w, rtol=1e-9
        )

    def test_infeasibility_norms(self, system, small_feasible, state):
        x, y, w, z = state
        A = small_feasible.A
        M = system.build_m1(x, y, w, z, with_coupling=False)
        product = M @ system.state_vector_m1(x, y)
        p_inf, d_inf = system.infeasibility_norms(product, w, z)
        assert p_inf == pytest.approx(
            np.max(np.abs(small_feasible.b - A @ x - w))
        )
        assert d_inf == pytest.approx(
            np.max(np.abs(small_feasible.c - A.T @ y + z))
        )


class TestCouplingModes:
    def test_state_coupling_tracks_ratios(self, system, state):
        x, y, w, z = state
        ru, rl = system.coupling_diagonals(x, y, w, z)
        np.testing.assert_allclose(ru, w / y)
        np.testing.assert_allclose(rl, z / x)

    def test_ratios_clamped(self, small_feasible):
        system = ScalableNewtonSystem(
            small_feasible, ratio_floor=1e-3, ratio_cap=10.0
        )
        m, n = small_feasible.A.shape
        x = np.full(n, 1e-12)
        z = np.ones(n)
        ru, rl = system.coupling_diagonals(
            x, np.ones(m), np.ones(m), z
        )
        assert np.all(rl <= 10.0)
        assert np.all(ru >= 1e-3)

    def test_constant_coupling(self, small_feasible, state):
        system = ScalableNewtonSystem(
            small_feasible, coupling="constant", regularization=0.01
        )
        ru, rl = system.coupling_diagonals(*state)
        np.testing.assert_allclose(ru, 0.01)
        np.testing.assert_allclose(rl, 0.01)

    def test_validation(self, small_feasible):
        with pytest.raises(ValueError, match="coupling"):
            ScalableNewtonSystem(small_feasible, coupling="bogus")
        with pytest.raises(ValueError, match="regularization"):
            ScalableNewtonSystem(small_feasible, regularization=0.0)
        with pytest.raises(ValueError, match="ratio_floor"):
            ScalableNewtonSystem(
                small_feasible, ratio_floor=2.0, ratio_cap=1.0
            )


class TestM2AndD:
    def test_m2_is_diag_xy(self, system, state):
        x, y, w, z = state
        M2 = system.build_m2(x, y)
        np.testing.assert_allclose(
            np.diag(M2), np.concatenate([x, y])
        )
        assert np.count_nonzero(M2 - np.diag(np.diag(M2))) == 0

    def test_d_is_diag_zw(self, system, state):
        x, y, w, z = state
        D = system.build_d(z, w)
        np.testing.assert_allclose(
            np.diag(D), np.concatenate([z, w])
        )

    def test_recovery_residual(self, system, state):
        x, y, w, z = state
        mu = 0.07
        xz_yw = np.concatenate([x * z, y * w])
        dx = np.ones_like(x) * 0.1
        dy = np.ones_like(y) * 0.2
        coupling = np.concatenate([z * dx, w * dy])
        r2 = system.residual_m2(mu, xz_yw, coupling)
        expected = mu - xz_yw - coupling
        np.testing.assert_allclose(r2, expected)
        r2_paper = system.residual_m2(mu, xz_yw, None)
        np.testing.assert_allclose(r2_paper, mu - xz_yw)

    def test_recovery_solves_eqn_9c_9d(self, system, small_feasible,
                                       state):
        # X dz = mu - XZe - Z dx  and  Y dw = mu - YWe - W dy.
        x, y, w, z = state
        m, n = small_feasible.A.shape
        mu = 0.05
        dx = np.linspace(-0.1, 0.1, n)
        dy = np.linspace(0.1, -0.1, m)
        xz_yw = np.concatenate([x * z, y * w])
        coupling = np.concatenate([z * dx, w * dy])
        r2 = system.residual_m2(mu, xz_yw, coupling)
        delta2 = np.linalg.solve(system.build_m2(x, y), r2)
        dz, dw = system.extract_steps_m2(delta2)
        np.testing.assert_allclose(
            z * dx + x * dz, mu - x * z, rtol=1e-9
        )
        np.testing.assert_allclose(
            w * dy + y * dw, mu - y * w, rtol=1e-9
        )

    def test_extract_shape_checks(self, system):
        with pytest.raises(ValueError, match="shape"):
            system.extract_steps_m1(np.zeros(2))
        with pytest.raises(ValueError, match="shape"):
            system.extract_steps_m2(np.zeros(2))
