"""Tests for the compensation-variable transform (Eqn. 13)."""

import numpy as np
import pytest

from repro.core import eliminate_negatives


class TestEliminateNegatives:
    def test_augmented_matrix_non_negative(self, rng):
        matrix = rng.uniform(-1, 1, size=(6, 6))
        record = eliminate_negatives(matrix)
        assert record.matrix.min() >= 0.0

    def test_solution_equivalence(self, rng):
        matrix = rng.uniform(-1, 1, size=(6, 6)) + 3 * np.eye(6)
        r = rng.uniform(-1, 1, size=6)
        reference = np.linalg.solve(matrix, r)
        record = eliminate_negatives(matrix)
        augmented = np.linalg.solve(
            record.matrix, record.augment_rhs(r)
        )
        np.testing.assert_allclose(
            record.extract(augmented), reference, rtol=1e-9
        )

    def test_augment_state_identity(self, rng):
        # matrix @ augment_state(s) == [K s, 0] — the Eqn. 15b trick.
        matrix = rng.uniform(-1, 1, size=(5, 5))
        s = rng.uniform(-2, 2, size=5)
        record = eliminate_negatives(matrix)
        product = record.matrix @ record.augment_state(s)
        np.testing.assert_allclose(
            product[:5], matrix @ s, rtol=1e-10, atol=1e-12
        )
        np.testing.assert_allclose(
            product[5:], np.zeros(record.n_compensation), atol=1e-12
        )

    def test_only_negative_columns_compensated(self):
        matrix = np.array([[1.0, -2.0], [3.0, 4.0]])
        record = eliminate_negatives(matrix)
        assert record.negative_columns == (1,)
        assert record.n_compensation == 1
        assert record.size == 3

    def test_non_negative_matrix_unchanged(self, rng):
        matrix = rng.uniform(0, 1, size=(4, 4))
        record = eliminate_negatives(matrix)
        assert record.n_compensation == 0
        np.testing.assert_array_equal(record.matrix, matrix)

    def test_all_negative_columns(self, rng):
        matrix = -rng.uniform(0.1, 1, size=(3, 3))
        record = eliminate_negatives(matrix)
        assert record.n_compensation == 3
        assert record.size == 6

    def test_example_from_eqn13_structure(self):
        # One negative at (0, 1): compensation column holds |A01|, the
        # link row enforces x1 + xc = 0.
        matrix = np.array([[2.0, -3.0], [1.0, 5.0]])
        record = eliminate_negatives(matrix)
        aug = record.matrix
        assert aug[0, 1] == 0.0       # negative zeroed
        assert aug[0, 2] == 3.0       # |negative| in compensation col
        assert aug[2, 1] == 1.0       # link row selects x1
        assert aug[2, 2] == 1.0       # link row selects xc

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            eliminate_negatives(np.ones((2, 3)))

    def test_rhs_shape_validated(self, rng):
        record = eliminate_negatives(rng.uniform(-1, 1, size=(4, 4)))
        with pytest.raises(ValueError, match="shape"):
            record.augment_rhs(np.zeros(5))
        with pytest.raises(ValueError, match="shape"):
            record.augment_state(np.zeros(5))
        with pytest.raises(ValueError, match="shape"):
            record.extract(np.zeros(2))
