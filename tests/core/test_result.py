"""Tests for solver result types."""

import numpy as np
import pytest

from repro.core import SolverResult, SolveStatus
from repro.core.result import with_message, with_status


def make_result(**overrides):
    fields = dict(
        status=SolveStatus.OPTIMAL,
        x=np.array([1.0, 2.0]),
        y=np.array([0.5]),
        w=np.array([0.1]),
        z=np.array([0.0, 0.3]),
        objective=5.0,
        iterations=10,
    )
    fields.update(overrides)
    return SolverResult(**fields)


class TestSolverResult:
    def test_is_optimal(self):
        assert make_result().is_optimal
        assert not make_result(status=SolveStatus.INFEASIBLE).is_optimal

    def test_duality_gap(self):
        result = make_result()
        expected = float(
            result.z @ result.x + result.y @ result.w
        )
        assert result.duality_gap == pytest.approx(expected)

    def test_status_string(self):
        assert str(SolveStatus.OPTIMAL) == "optimal"
        assert str(SolveStatus.INFEASIBLE) == "infeasible"


class TestHelpers:
    def test_with_message_appends(self):
        result = make_result(message="first")
        updated = with_message(result, "second")
        assert updated.message == "first; second"
        # Original untouched (frozen dataclass copies).
        assert result.message == "first"

    def test_with_message_on_empty(self):
        assert with_message(make_result(), "only").message == "only"

    def test_with_status(self):
        result = make_result(message="stalled")
        updated = with_status(result, SolveStatus.INFEASIBLE, "verdict")
        assert updated.status is SolveStatus.INFEASIBLE
        assert "verdict" in updated.message
        assert updated.objective == result.objective
