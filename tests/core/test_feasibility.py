"""Tests for divergence / infeasibility detection."""

import numpy as np
import pytest

from repro.core.feasibility import (
    DivergenceKind,
    collapse_threshold,
    detect_divergence,
    scaled_big_m,
)


class TestDetectDivergence:
    def test_none_when_bounded(self):
        assert detect_divergence(
            np.ones(3), np.ones(2), bound=100.0
        ) is DivergenceKind.NONE

    def test_x_divergence_means_dual_infeasible(self):
        kind = detect_divergence(
            np.array([1.0, 1e9]), np.ones(2), bound=1e6
        )
        assert kind is DivergenceKind.DUAL_INFEASIBLE

    def test_y_divergence_means_primal_infeasible(self):
        kind = detect_divergence(
            np.ones(2), np.array([1e9, 1.0]), bound=1e6
        )
        assert kind is DivergenceKind.PRIMAL_INFEASIBLE

    def test_nan_treated_as_divergence(self):
        kind = detect_divergence(
            np.array([np.nan]), np.ones(2), bound=1e6
        )
        assert kind is DivergenceKind.DUAL_INFEASIBLE

    def test_negative_magnitudes_count(self):
        kind = detect_divergence(
            np.array([-1e9]), np.ones(2), bound=1e6
        )
        assert kind is DivergenceKind.DUAL_INFEASIBLE


class TestScaledBigM:
    def test_scales_with_data(self, tiny_lp):
        bound = scaled_big_m(tiny_lp, 1e6)
        assert bound == pytest.approx(1e6 * max(np.abs(tiny_lp.b).max(),
                                                np.abs(tiny_lp.c).max(),
                                                1.0))

    def test_floor_at_big_m(self, rng):
        from repro.core import LinearProgram

        lp = LinearProgram(
            c=np.array([1e-3]),
            A=np.array([[1e-3]]),
            b=np.array([1e-3]),
        )
        assert scaled_big_m(lp, 1e6) == pytest.approx(1e6)


class TestCollapseThreshold:
    def test_grows_with_dynamic_range(self, tiny_lp):
        low = collapse_threshold(tiny_lp, 100.0, 2.0)
        high = collapse_threshold(tiny_lp, 1000.0, 2.0)
        assert high > low

    def test_shrinks_with_headroom(self, tiny_lp):
        tight = collapse_threshold(tiny_lp, 1000.0, 1.0)
        loose = collapse_threshold(tiny_lp, 1000.0, 4.0)
        assert loose < tight

    def test_scales_with_structural_magnitude(self, tiny_lp):
        big = tiny_lp.scaled(1.0)
        from repro.core import LinearProgram

        scaled = LinearProgram(
            c=tiny_lp.c, A=10.0 * tiny_lp.A, b=tiny_lp.b
        )
        assert collapse_threshold(scaled, 1000.0, 2.0) == pytest.approx(
            10.0 * collapse_threshold(big, 1000.0, 2.0)
        )
