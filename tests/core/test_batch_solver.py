"""Batched lockstep solver vs. the serial reference, bitwise.

:func:`~repro.core.batch_solver.solve_crossbar_batch` promises that
with the numpy backend every member's result — iterates, status,
message, write counters, attempt records, and the caller's generator
position afterwards — is exactly what a serial
:func:`~repro.core.crossbar_solver.solve_crossbar` call returns.
These tests hold it to that across shapes, hardware modes, and the
rewind-to-serial escalation path.
"""

from unittest import mock

import numpy as np

from repro.core import batch_solver
from repro.core.batch_solver import solve_crossbar_batch
from repro.core.crossbar_solver import solve_crossbar
from repro.core.result import FailureReason, SolveStatus
from repro.core.settings import CrossbarSolverSettings
from repro.devices.variation import UniformVariation
from repro.reliability.verify import WriteVerifyPolicy
from repro.workloads import random_feasible_lp


def assert_parity(problems, settings, seed0=5000, **kwargs):
    """Batch and serial arms with identical generators must agree."""
    rngs_batch = [
        np.random.default_rng(seed0 + i) for i in range(len(problems))
    ]
    rngs_serial = [
        np.random.default_rng(seed0 + i) for i in range(len(problems))
    ]
    batch = solve_crossbar_batch(
        problems, settings, rngs=rngs_batch, **kwargs
    )
    serial = [
        solve_crossbar(problem, settings, rng=rngs_serial[i])
        for i, problem in enumerate(problems)
    ]
    for i, (got, want) in enumerate(zip(batch, serial)):
        assert got.status == want.status, i
        for field in ("x", "y", "w", "z"):
            assert (
                getattr(got, field).tobytes()
                == getattr(want, field).tobytes()
            ), (i, field)
        assert got.objective == want.objective, i
        assert got.iterations == want.iterations, i
        assert got.message == want.message, i
        assert got.failure_reason == want.failure_reason, i
        assert got.crossbar == want.crossbar, i
        assert [
            (r.index, r.action, r.seed, r.status) for r in got.attempts
        ] == [
            (r.index, r.action, r.seed, r.status) for r in want.attempts
        ], i
        # The caller's generators must land on the same stream position,
        # so batched and serial execution can be mixed freely.
        assert rngs_batch[i].integers(0, 2**63) == rngs_serial[i].integers(
            0, 2**63
        ), i
    return batch


def lps(count, m, n=None, seed=300):
    return [
        random_feasible_lp(m, n, rng=np.random.default_rng(seed + i))
        for i in range(count)
    ]


class TestBatchedParity:
    def test_same_shape_group(self):
        assert_parity(
            lps(6, 6),
            CrossbarSolverSettings(variation=UniformVariation(0.05)),
        )

    def test_mixed_shapes_and_singleton(self):
        problems = (
            lps(3, 5, seed=400)
            + lps(3, 8, seed=500)
            + lps(1, 4, 7, seed=600)  # structural singleton: serial path
        )
        assert_parity(
            problems,
            CrossbarSolverSettings(variation=UniformVariation(0.05)),
        )

    def test_hardware_modes(self):
        problems = lps(4, 6)
        for settings in (
            CrossbarSolverSettings(variation=UniformVariation(0.12)),
            CrossbarSolverSettings(
                variation=UniformVariation(0.05),
                write_verify=WriteVerifyPolicy(0.02, 3),
            ),
            CrossbarSolverSettings(
                variation=UniformVariation(0.05), off_state="leak"
            ),
            CrossbarSolverSettings(
                variation=UniformVariation(0.05),
                dac_bits=None,
                adc_bits=None,
            ),
        ):
            assert_parity(problems, settings)

    def test_retry_heavy_variation(self):
        # 35% variation forces inconclusive first attempts on some
        # members: those must rewind their generator and reproduce the
        # full serial recovery ladder.
        assert_parity(
            lps(5, 6),
            CrossbarSolverSettings(variation=UniformVariation(0.35)),
        )

    def test_iteration_capped(self):
        assert_parity(
            lps(6, 6),
            CrossbarSolverSettings(
                variation=UniformVariation(0.05), max_iterations=5
            ),
        )

    def test_serial_fallbacks(self):
        problems = lps(3, 6)
        assert_parity(
            problems,
            CrossbarSolverSettings(
                variation=UniformVariation(0.05), row_scaling=True
            ),
        )
        assert_parity(
            problems,
            CrossbarSolverSettings(variation=UniformVariation(0.05)),
            trace=True,
        )


class TestRewindEscalation:
    def test_doctored_failures_reproduce_serial_ladder(self):
        """Force inconclusive lockstep members; they must rewind cleanly.

        The lockstep attempt is wrapped so every other member of each
        group reports NUMERICAL_FAILURE regardless of the real outcome;
        the batch solver must rewind those members' generators and
        obtain the bitwise serial result via the full recovery ladder.
        """
        problems = lps(6, 6, seed=700)
        settings = CrossbarSolverSettings(variation=UniformVariation(0.05))
        real_attempt = batch_solver._lockstep_attempt

        def doctored(members, settings_, seeds, backend):
            results = real_attempt(members, settings_, seeds, backend)
            import dataclasses

            return [
                dataclasses.replace(
                    result,
                    status=SolveStatus.NUMERICAL_FAILURE,
                    failure_reason=FailureReason.SINGULAR_SYSTEM,
                    message="doctored",
                )
                if k % 2
                else result
                for k, result in enumerate(results)
            ]

        with mock.patch.object(
            batch_solver, "_lockstep_attempt", side_effect=doctored
        ):
            assert_parity(problems, settings, seed0=9000)
