"""Tests for Solver 2 (Algorithm 2, large-scale crossbar PDIP)."""

import numpy as np
import pytest

from repro.baselines import solve_scipy
from repro.core import (
    LargeScaleCrossbarPDIPSolver,
    ScalableSolverSettings,
    SolveStatus,
    solve_crossbar_large_scale,
)
from repro.devices import UniformVariation
from repro.workloads import random_feasible_lp, random_infeasible_lp


class TestOptimality:
    def test_tiny_lp(self, tiny_lp):
        result = solve_crossbar_large_scale(
            tiny_lp, rng=np.random.default_rng(0)
        )
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(12.0, rel=0.05)

    def test_ideal_hardware_accuracy_band(self, rng):
        # Paper Fig. 5(b): 0.8%-8.5% inaccuracy.
        for trial in range(3):
            problem = random_feasible_lp(15, rng=rng)
            truth = solve_scipy(problem)
            result = solve_crossbar_large_scale(
                problem, rng=np.random.default_rng(trial)
            )
            assert result.status is SolveStatus.OPTIMAL
            error = abs(result.objective - truth.objective) / abs(
                truth.objective
            )
            assert error < 0.06

    def test_variation_accuracy_band(self, rng):
        settings = ScalableSolverSettings(
            variation=UniformVariation(0.10)
        )
        problem = random_feasible_lp(15, rng=rng)
        truth = solve_scipy(problem)
        result = solve_crossbar_large_scale(
            problem, settings, rng=np.random.default_rng(7)
        )
        assert result.status is SolveStatus.OPTIMAL
        error = abs(result.objective - truth.objective) / abs(
            truth.objective
        )
        assert error < 0.15

    def test_fewer_iterations_than_solver1_system_size(self,
                                                       small_feasible):
        # The point of Solver 2: much smaller arrays.
        from repro.core import AugmentedNewtonSystem, ScalableNewtonSystem

        full = AugmentedNewtonSystem(small_feasible).size
        split = ScalableNewtonSystem(small_feasible).size_m1
        assert split < full


class TestInfeasibility:
    def test_detects_planted_infeasibility(self, rng):
        problem = random_infeasible_lp(12, rng=rng)
        result = solve_crossbar_large_scale(
            problem, rng=np.random.default_rng(3)
        )
        assert result.status is SolveStatus.INFEASIBLE


class TestLiteralPaperModes:
    """The printed Eqns. 16c/17a/17b diverge; the ablation modes
    reproduce that analytically-predicted failure."""

    def test_constant_coupling_fails(self, small_feasible):
        settings = ScalableSolverSettings(
            coupling="constant",
            rhs_mode="paper",
            recovery="paper",
            step_policy="constant",
            retries=0,
        )
        result = solve_crossbar_large_scale(
            small_feasible, settings, rng=np.random.default_rng(0)
        )
        # Diverges (reported as a spurious infeasibility/failure) or
        # stalls far from optimum — never a clean optimal solve.
        if result.status is SolveStatus.OPTIMAL:
            truth = solve_scipy(small_feasible)
            error = abs(result.objective - truth.objective) / abs(
                truth.objective
            )
            assert error > 0.10
        else:
            assert result.status in (
                SolveStatus.INFEASIBLE,
                SolveStatus.NUMERICAL_FAILURE,
                SolveStatus.ITERATION_LIMIT,
            )

    def test_paper_rhs_breaks_primal_convergence(self, small_feasible):
        settings = ScalableSolverSettings(rhs_mode="paper", retries=0)
        result = solve_crossbar_large_scale(
            small_feasible, settings, rng=np.random.default_rng(0)
        )
        truth = solve_scipy(small_feasible)
        if result.status is SolveStatus.OPTIMAL:
            error = abs(result.objective - truth.objective) / abs(
                truth.objective
            )
            exact = solve_crossbar_large_scale(
                small_feasible,
                ScalableSolverSettings(retries=0),
                rng=np.random.default_rng(0),
            )
            exact_error = abs(exact.objective - truth.objective) / abs(
                truth.objective
            )
            assert error >= exact_error


class TestMechanics:
    def test_counters_cover_four_arrays(self, small_feasible):
        result = solve_crossbar_large_scale(
            small_feasible, rng=np.random.default_rng(2)
        )
        counters = result.crossbar
        assert counters is not None
        # Per iteration: >= 3 multiplies (r1, M2 product, coupling)
        # and >= 2 solves (M1, recovery).
        assert counters.multiplies >= 2 * result.iterations
        assert counters.solves >= result.iterations
        assert counters.cells_written > 0

    def test_trace(self, small_feasible):
        solver = LargeScaleCrossbarPDIPSolver(
            small_feasible, rng=np.random.default_rng(2)
        )
        result = solver.solve(trace=True)
        assert len(result.trace) == result.iterations

    def test_deterministic_given_seed(self, small_feasible):
        first = solve_crossbar_large_scale(
            small_feasible, rng=np.random.default_rng(11)
        )
        second = solve_crossbar_large_scale(
            small_feasible, rng=np.random.default_rng(11)
        )
        assert first.objective == second.objective

    def test_constant_step_policy_runs(self, small_feasible):
        settings = ScalableSolverSettings(
            step_policy="constant", constant_theta=0.4
        )
        result = solve_crossbar_large_scale(
            small_feasible, settings, rng=np.random.default_rng(5)
        )
        # Must terminate with a classified status.
        assert result.status in tuple(SolveStatus)


class TestRecoveryArrayReuse:
    def test_reprogram_rung_reuses_all_four_arrays(self, small_feasible):
        settings = ScalableSolverSettings(
            variation=UniformVariation(0.05)
        )
        solver = LargeScaleCrossbarPDIPSolver(
            small_feasible, settings, rng=np.random.default_rng(3)
        )
        cold, _ = solver._solve_once(rng=np.random.default_rng(3))
        arrays = solver._last_arrays
        assert arrays is not None and len(arrays) == 4
        warm, _ = solver._solve_once(
            rng=np.random.default_rng(4),
            arrays=arrays,
            redraw=np.random.default_rng(4),
        )
        # Reuse keeps the same four operators (m1_mult in particular is
        # write-once) and skips the initial full programming, so the
        # warm attempt pays only cheap diagonal resets: far fewer
        # write pulses and latency than the cold attempt, whatever
        # iteration count each trajectory takes (cells_written scales
        # with iterations, so it is not a reliable reuse signal).
        assert solver._last_arrays is arrays
        assert warm.status is SolveStatus.OPTIMAL
        assert warm.crossbar.write_pulses < cold.crossbar.write_pulses
        assert warm.crossbar.write_latency_s < cold.crossbar.write_latency_s
