"""Tests for the LinearProgram problem type."""

import numpy as np
import pytest

from repro.core import LinearProgram, from_minimization


class TestValidation:
    def test_shape_mismatch_c(self):
        with pytest.raises(ValueError, match="c has shape"):
            LinearProgram(
                c=np.ones(3), A=np.ones((2, 2)), b=np.ones(2)
            )

    def test_shape_mismatch_b(self):
        with pytest.raises(ValueError, match="b has shape"):
            LinearProgram(
                c=np.ones(2), A=np.ones((2, 2)), b=np.ones(3)
            )

    def test_rejects_1d_A(self):
        with pytest.raises(ValueError, match="2-D"):
            LinearProgram(c=np.ones(2), A=np.ones(2), b=np.ones(1))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            LinearProgram(
                c=np.array([np.nan]), A=np.ones((1, 1)), b=np.ones(1)
            )

    def test_dimensions(self, tiny_lp):
        assert tiny_lp.n_variables == 2
        assert tiny_lp.n_constraints == 2


class TestObjectives:
    def test_objective(self, tiny_lp):
        assert tiny_lp.objective(np.array([4.0, 0.0])) == pytest.approx(12.0)

    def test_dual_objective(self, tiny_lp):
        assert tiny_lp.dual_objective(np.array([3.0, 0.0])) == (
            pytest.approx(12.0)
        )


class TestFeasibility:
    def test_feasible_point(self, tiny_lp):
        assert tiny_lp.is_feasible(np.array([1.0, 1.0]))

    def test_constraint_violation_positive_outside(self, tiny_lp):
        assert tiny_lp.constraint_violation(np.array([10.0, 0.0])) > 0

    def test_negative_x_is_infeasible(self, tiny_lp):
        assert not tiny_lp.is_feasible(np.array([-0.1, 0.0]))

    def test_violation_zero_inside(self, tiny_lp):
        assert tiny_lp.constraint_violation(np.array([0.5, 0.5])) == 0.0


class TestRelaxedCheck:
    def test_exact_point_passes(self, tiny_lp):
        assert tiny_lp.satisfies_relaxed_constraints(np.array([4.0, 0.0]))

    def test_slightly_violating_point_passes(self, tiny_lp):
        # Violates x1 + x2 <= 4 by ~2% of (|b| + 1): within alpha=1.05.
        assert tiny_lp.satisfies_relaxed_constraints(
            np.array([4.1, 0.0]), alpha=1.05
        )

    def test_grossly_violating_point_fails(self, tiny_lp):
        assert not tiny_lp.satisfies_relaxed_constraints(
            np.array([8.0, 0.0]), alpha=1.05
        )

    def test_alpha_below_one_rejected(self, tiny_lp):
        with pytest.raises(ValueError, match="alpha"):
            tiny_lp.satisfies_relaxed_constraints(np.zeros(2), alpha=0.9)

    def test_extra_row_tolerance_loosens(self, tiny_lp):
        x = np.array([5.0, 0.0])
        assert not tiny_lp.satisfies_relaxed_constraints(x, alpha=1.01)
        assert tiny_lp.satisfies_relaxed_constraints(
            x, alpha=1.01, extra_row_tolerance=2.0
        )


class TestVariationTolerance:
    def test_zero_variation_gives_zero_budget(self, tiny_lp):
        np.testing.assert_array_equal(
            tiny_lp.variation_row_tolerance(np.ones(2), 0.0), np.zeros(2)
        )

    def test_budget_scales_with_variation(self, tiny_lp):
        x = np.ones(2)
        lo = tiny_lp.variation_row_tolerance(x, 0.05)
        hi = tiny_lp.variation_row_tolerance(x, 0.20)
        assert np.all(hi > lo)

    def test_budget_formula(self, tiny_lp):
        x = np.array([1.0, 2.0])
        expected = (
            3.0 / np.sqrt(3.0) * 0.1
            * np.sqrt((tiny_lp.A**2) @ (x**2))
        )
        np.testing.assert_allclose(
            tiny_lp.variation_row_tolerance(x, 0.1), expected
        )

    def test_rejects_negative_magnitude(self, tiny_lp):
        with pytest.raises(ValueError):
            tiny_lp.variation_row_tolerance(np.ones(2), -0.1)


class TestDuality:
    def test_dual_shape(self, tiny_lp):
        dual = tiny_lp.dual()
        assert dual.n_variables == tiny_lp.n_constraints
        assert dual.n_constraints == tiny_lp.n_variables

    def test_dual_of_dual_is_primal(self, tiny_lp):
        double = tiny_lp.dual().dual()
        np.testing.assert_allclose(double.c, tiny_lp.c)
        np.testing.assert_allclose(double.A, tiny_lp.A)
        np.testing.assert_allclose(double.b, tiny_lp.b)

    def test_weak_duality(self, tiny_lp, rng):
        # Any primal-feasible x and dual-feasible y satisfy c'x <= b'y.
        x = np.array([1.0, 0.5])
        assert tiny_lp.is_feasible(x)
        y = np.array([3.0, 0.5])
        assert np.all(tiny_lp.A.T @ y >= tiny_lp.c)
        assert tiny_lp.objective(x) <= tiny_lp.dual_objective(y)


class TestTransforms:
    def test_scaled(self, tiny_lp):
        scaled = tiny_lp.scaled(2.0)
        np.testing.assert_allclose(scaled.c, 2.0 * tiny_lp.c)
        with pytest.raises(ValueError):
            tiny_lp.scaled(-1.0)

    def test_from_minimization(self):
        problem = from_minimization(
            c=np.array([1.0, 2.0]),
            A_ub=np.eye(2),
            b_ub=np.ones(2),
        )
        np.testing.assert_allclose(problem.c, [-1.0, -2.0])
