"""Tests for the mixed equality/inequality problem builder."""

import numpy as np
import pytest

from repro.baselines import solve_scipy
from repro.core import SolveStatus, solve_crossbar, with_equalities


class TestWithEqualities:
    def test_equality_encoded_as_pair(self):
        problem = with_equalities(
            c=np.array([1.0, 1.0]),
            A_eq=np.array([[1.0, 1.0]]),
            b_eq=np.array([2.0]),
        )
        assert problem.n_constraints == 2
        np.testing.assert_allclose(problem.A[0], -problem.A[1])
        np.testing.assert_allclose(problem.b, [2.0, -2.0])

    def test_exact_equality_enforced(self):
        # max x1 s.t. x1 + x2 = 2, x1 <= 1.5.
        problem = with_equalities(
            c=np.array([1.0, 0.0]),
            A_ub=np.array([[1.0, 0.0]]),
            b_ub=np.array([1.5]),
            A_eq=np.array([[1.0, 1.0]]),
            b_eq=np.array([2.0]),
        )
        result = solve_scipy(problem)
        assert result.status is SolveStatus.OPTIMAL
        assert result.x[0] == pytest.approx(1.5)
        assert result.x.sum() == pytest.approx(2.0)

    def test_slack_restores_interior_for_analog_solver(self):
        problem = with_equalities(
            c=np.array([1.0, 0.5]),
            A_ub=np.array([[1.0, 0.0], [0.0, 1.0]]),
            b_ub=np.array([1.5, 2.0]),
            A_eq=np.array([[1.0, 1.0]]),
            b_eq=np.array([2.0]),
            equality_slack=0.05,
        )
        truth = solve_scipy(problem)
        result = solve_crossbar(problem, rng=np.random.default_rng(0))
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(
            truth.objective, rel=0.05
        )

    def test_inequality_only(self):
        problem = with_equalities(
            c=np.array([1.0]),
            A_ub=np.array([[1.0]]),
            b_ub=np.array([3.0]),
        )
        assert problem.n_constraints == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="together"):
            with_equalities(
                c=np.ones(2), A_ub=np.ones((1, 2)), b_ub=None
            )
        with pytest.raises(ValueError, match="together"):
            with_equalities(
                c=np.ones(2), A_eq=np.ones((1, 2)), b_eq=None
            )
        with pytest.raises(ValueError, match="at least one"):
            with_equalities(c=np.ones(2))
        with pytest.raises(ValueError, match="slack"):
            with_equalities(
                c=np.ones(1),
                A_eq=np.ones((1, 1)),
                b_eq=np.ones(1),
                equality_slack=-0.1,
            )
