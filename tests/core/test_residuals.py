"""Tests for residual and centering computations."""

import numpy as np
import pytest

from repro.core.residuals import (
    centering_mu,
    converged,
    dual_infeasibility,
    dual_residual,
    duality_gap,
    primal_infeasibility,
    primal_residual,
)


class TestResiduals:
    def test_primal_residual_zero_when_consistent(self, tiny_lp, rng):
        x = rng.uniform(0, 1, size=2)
        w = tiny_lp.b - tiny_lp.A @ x
        np.testing.assert_allclose(
            primal_residual(tiny_lp, x, w), np.zeros(2), atol=1e-14
        )
        assert primal_infeasibility(tiny_lp, x, w) == pytest.approx(
            0.0, abs=1e-14
        )

    def test_dual_residual_zero_when_consistent(self, tiny_lp, rng):
        y = rng.uniform(1, 2, size=2)
        z = tiny_lp.A.T @ y - tiny_lp.c
        np.testing.assert_allclose(
            dual_residual(tiny_lp, y, z), np.zeros(2), atol=1e-14
        )

    def test_infeasibility_is_infinity_norm(self, tiny_lp):
        x = np.zeros(2)
        w = np.zeros(2)
        assert primal_infeasibility(tiny_lp, x, w) == pytest.approx(
            np.max(np.abs(tiny_lp.b))
        )
        assert dual_infeasibility(tiny_lp, np.zeros(2), np.zeros(2)) == (
            pytest.approx(np.max(np.abs(tiny_lp.c)))
        )


class TestGapAndMu:
    def test_gap_formula(self, rng):
        x, z = rng.uniform(0, 1, 4), rng.uniform(0, 1, 4)
        y, w = rng.uniform(0, 1, 3), rng.uniform(0, 1, 3)
        assert duality_gap(x, y, w, z) == pytest.approx(
            float(z @ x + y @ w)
        )

    def test_mu_matches_eqn8(self, rng):
        x, z = rng.uniform(0, 1, 4), rng.uniform(0, 1, 4)
        y, w = rng.uniform(0, 1, 3), rng.uniform(0, 1, 3)
        mu = centering_mu(x, y, w, z, delta=0.1)
        assert mu == pytest.approx(0.1 * (z @ x + y @ w) / 7)

    @pytest.mark.parametrize("delta", [0.0, 1.0, -0.5, 2.0])
    def test_mu_rejects_bad_delta(self, delta, rng):
        v = np.ones(2)
        with pytest.raises(ValueError, match="delta"):
            centering_mu(v, v, v, v, delta=delta)


class TestConverged:
    def test_all_below(self):
        assert converged(
            1e-9, 1e-9, 1e-9,
            eps_primal=1e-6, eps_dual=1e-6, eps_gap=1e-6,
        )

    @pytest.mark.parametrize(
        "p,d,g", [(1.0, 0.0, 0.0), (0.0, 1.0, 0.0), (0.0, 0.0, 1.0)]
    )
    def test_any_above_blocks(self, p, d, g):
        assert not converged(
            p, d, g, eps_primal=1e-6, eps_dual=1e-6, eps_gap=1e-6
        )
