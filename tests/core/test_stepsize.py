"""Tests for step-length policies (Eqn. 11)."""

import numpy as np
import pytest

from repro.core.stepsize import constant_theta, ratio_test_theta


class TestRatioTest:
    def test_full_damped_step_when_unblocked(self):
        state = np.ones(4)
        step = np.ones(4)  # all increasing: no boundary in the way
        assert ratio_test_theta(state, step, step_scale=0.99) == 0.99

    def test_blocks_at_boundary(self):
        state = np.array([1.0, 2.0])
        step = np.array([-2.0, 0.0])  # x1 hits zero at theta = 0.5
        theta = ratio_test_theta(state, step, step_scale=0.99)
        assert theta == pytest.approx(0.99 * 0.5)
        # Applying the step keeps positivity.
        assert np.all(state + theta * step > 0)

    def test_most_binding_component_wins(self):
        state = np.array([1.0, 1.0, 1.0])
        step = np.array([-0.5, -4.0, -1.0])
        theta = ratio_test_theta(state, step, step_scale=0.99)
        assert theta == pytest.approx(0.99 / 4.0)

    def test_positivity_invariant_random(self, rng):
        for _ in range(50):
            state = rng.uniform(0.01, 2.0, size=10)
            step = rng.normal(size=10)
            theta = ratio_test_theta(state, step, step_scale=0.95)
            assert np.all(state + theta * step > 0)

    def test_ignore_below_excludes_pinned_variables(self):
        # A variable pinned at the floor with a tiny negative step must
        # not freeze the global step.
        state = np.array([1.0, 1e-12])
        step = np.array([1.0, -1e-6])
        frozen = ratio_test_theta(state, step, step_scale=0.99)
        assert frozen < 1e-5
        freed = ratio_test_theta(
            state, step, step_scale=0.99, ignore_below=1e-8
        )
        assert freed == 0.99

    def test_all_pinned_gives_full_step(self):
        state = np.full(3, 1e-12)
        step = -np.ones(3)
        theta = ratio_test_theta(
            state, step, step_scale=0.9, ignore_below=1e-8
        )
        assert theta == 0.9

    def test_rejects_nonpositive_state(self):
        with pytest.raises(ValueError, match="positive"):
            ratio_test_theta(np.array([1.0, 0.0]), np.ones(2))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            ratio_test_theta(np.ones(3), np.ones(2))

    @pytest.mark.parametrize("scale", [0.0, 1.0, 1.5])
    def test_rejects_bad_step_scale(self, scale):
        with pytest.raises(ValueError, match="step_scale"):
            ratio_test_theta(np.ones(2), np.ones(2), step_scale=scale)

    def test_rejects_negative_ignore_below(self):
        with pytest.raises(ValueError, match="ignore_below"):
            ratio_test_theta(
                np.ones(2), np.ones(2), ignore_below=-1.0
            )


class TestConstantTheta:
    def test_passthrough(self):
        assert constant_theta(0.5) == 0.5
        assert constant_theta(1.0) == 1.0

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5])
    def test_validation(self, bad):
        with pytest.raises(ValueError, match="theta"):
            constant_theta(bad)
