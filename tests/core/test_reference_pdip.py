"""Tests for the software reference PDIP solver."""

import numpy as np
import pytest

from repro.baselines import solve_scipy
from repro.core import PDIPSettings, SolveStatus, solve_reference
from repro.workloads import random_feasible_lp, random_infeasible_lp


class TestOptimality:
    def test_tiny_lp_exact(self, tiny_lp):
        result = solve_reference(tiny_lp)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(12.0, rel=1e-6)
        np.testing.assert_allclose(
            result.x, [4.0, 0.0], atol=1e-5
        )

    def test_matches_scipy_on_random_batch(self, rng):
        for _ in range(5):
            problem = random_feasible_lp(15, rng=rng)
            ours = solve_reference(problem)
            truth = solve_scipy(problem)
            assert ours.status is SolveStatus.OPTIMAL
            assert ours.objective == pytest.approx(
                truth.objective, rel=1e-5
            )

    def test_solution_is_feasible(self, small_feasible):
        result = solve_reference(small_feasible)
        assert small_feasible.is_feasible(result.x, tolerance=1e-6)

    def test_duality_gap_closes(self, small_feasible):
        result = solve_reference(small_feasible)
        assert result.duality_gap < 1e-4

    def test_dual_variables_certify(self, small_feasible):
        # b'y >= c'x with near-equality at the optimum.
        result = solve_reference(small_feasible)
        primal = small_feasible.objective(result.x)
        dual = small_feasible.dual_objective(result.y)
        assert dual >= primal - 1e-4
        assert dual == pytest.approx(primal, rel=1e-3)


class TestInfeasibility:
    def test_detects_planted_infeasibility(self, rng):
        for _ in range(3):
            problem = random_infeasible_lp(12, rng=rng)
            result = solve_reference(problem)
            assert result.status is SolveStatus.INFEASIBLE

    def test_divergence_kind_reported(self, small_infeasible):
        result = solve_reference(small_infeasible)
        assert result.message in (
            "primal_infeasible", "dual_infeasible"
        )


class TestControls:
    def test_iteration_limit(self, small_feasible):
        settings = PDIPSettings(max_iterations=2)
        result = solve_reference(small_feasible, settings)
        assert result.status is SolveStatus.ITERATION_LIMIT
        assert result.iterations <= 2

    def test_trace_records(self, small_feasible):
        result = solve_reference(small_feasible, trace=True)
        assert len(result.trace) == result.iterations
        gaps = [record.duality_gap for record in result.trace]
        # The gap decreases overall across the run.
        assert gaps[-1] < gaps[0]

    def test_no_crossbar_counters(self, small_feasible):
        assert solve_reference(small_feasible).crossbar is None

    def test_deterministic(self, small_feasible):
        first = solve_reference(small_feasible)
        second = solve_reference(small_feasible)
        np.testing.assert_array_equal(first.x, second.x)
