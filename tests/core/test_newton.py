"""Tests for Newton-system assembly (Eqns. 12 and 14a)."""

import numpy as np
import pytest

from repro.core import AugmentedNewtonSystem, newton_matrix, newton_rhs
from repro.workloads import random_feasible_lp


@pytest.fixture
def state(small_feasible, rng):
    m, n = small_feasible.A.shape
    return (
        rng.uniform(0.5, 2.0, n),   # x
        rng.uniform(0.5, 2.0, m),   # y
        rng.uniform(0.5, 2.0, m),   # w
        rng.uniform(0.5, 2.0, n),   # z
    )


class TestSignedSystem:
    def test_shapes(self, small_feasible, state):
        x, y, w, z = state
        m, n = small_feasible.A.shape
        M = newton_matrix(small_feasible, x, y, w, z)
        r = newton_rhs(small_feasible, x, y, w, z, mu=0.1)
        assert M.shape == (2 * (n + m), 2 * (n + m))
        assert r.shape == (2 * (n + m),)

    def test_solution_satisfies_linearized_kkt(self, small_feasible, state):
        x, y, w, z = state
        A = small_feasible.A
        mu = 0.05
        M = newton_matrix(small_feasible, x, y, w, z)
        r = newton_rhs(small_feasible, x, y, w, z, mu)
        delta = np.linalg.solve(M, r)
        m, n = A.shape
        dx, dy = delta[:n], delta[n:n + m]
        dw, dz = delta[n + m:n + 2 * m], delta[n + 2 * m:]
        # Eqn. 9a and 9b hold exactly for the Newton step.
        np.testing.assert_allclose(
            A @ dx + dw, small_feasible.b - A @ x - w, rtol=1e-8
        )
        np.testing.assert_allclose(
            A.T @ dy - dz,
            small_feasible.c - A.T @ y + z,
            rtol=1e-8,
        )
        # Eqns. 9c / 9d.
        np.testing.assert_allclose(z * dx + x * dz, mu - x * z, rtol=1e-8)
        np.testing.assert_allclose(w * dy + y * dw, mu - y * w, rtol=1e-8)


class TestAugmentedSystem:
    def test_matrix_is_non_negative(self, small_feasible, state):
        system = AugmentedNewtonSystem(small_feasible)
        M = system.build_matrix(*state)
        assert M.min() >= 0.0

    def test_size_accounts_for_compensation(self, small_feasible):
        system = AugmentedNewtonSystem(small_feasible)
        m, n = small_feasible.A.shape
        expected = 3 * (n + m) + system.k_x + system.k_y
        assert system.size == expected

    def test_augmented_solution_matches_signed(self, small_feasible, state):
        x, y, w, z = state
        mu = 0.05
        signed = newton_matrix(small_feasible, x, y, w, z)
        signed_rhs = newton_rhs(small_feasible, x, y, w, z, mu)
        reference = np.linalg.solve(signed, signed_rhs)

        system = AugmentedNewtonSystem(small_feasible)
        M = system.build_matrix(x, y, w, z)
        targets = system.rhs_targets(mu)
        product = M @ system.state_vector(x, y, w, z)
        r = system.residual_from_product(product, mu)
        delta = np.linalg.solve(M, r)
        dx, dy, dw, dz = system.extract_steps(delta)

        m, n = small_feasible.A.shape
        np.testing.assert_allclose(dx, reference[:n], rtol=1e-7, atol=1e-9)
        np.testing.assert_allclose(
            dy, reference[n:n + m], rtol=1e-7, atol=1e-9
        )
        np.testing.assert_allclose(
            dw, reference[n + m:n + 2 * m], rtol=1e-7, atol=1e-9
        )
        np.testing.assert_allclose(
            dz, reference[n + 2 * m:], rtol=1e-7, atol=1e-9
        )
        assert targets.shape == (system.size,)

    def test_eqn15b_product_identity(self, small_feasible, state):
        # M @ [x, y, w, z, -w, -z, p] = [Ax+w, A'y-z, 2XZe, 2YWe, 0...].
        x, y, w, z = state
        A = small_feasible.A
        system = AugmentedNewtonSystem(small_feasible)
        M = system.build_matrix(x, y, w, z)
        product = M @ system.state_vector(x, y, w, z)
        lay = system.layout
        np.testing.assert_allclose(
            product[lay.row_primal], A @ x + w, rtol=1e-10
        )
        np.testing.assert_allclose(
            product[lay.row_dual], A.T @ y - z, rtol=1e-10
        )
        np.testing.assert_allclose(
            product[lay.row_xz], 2 * x * z, rtol=1e-10
        )
        np.testing.assert_allclose(
            product[lay.row_yw], 2 * y * w, rtol=1e-10
        )
        np.testing.assert_allclose(
            product[lay.row_ulink], np.zeros(system.m), atol=1e-12
        )
        np.testing.assert_allclose(
            product[lay.row_plink],
            np.zeros(system.k_x + system.k_y),
            atol=1e-12,
        )

    def test_residual_matches_newton_rhs(self, small_feasible, state):
        x, y, w, z = state
        mu = 0.1
        system = AugmentedNewtonSystem(small_feasible)
        M = system.build_matrix(x, y, w, z)
        product = M @ system.state_vector(x, y, w, z)
        r = system.residual_from_product(product, mu)
        reference = newton_rhs(small_feasible, x, y, w, z, mu)
        lay = system.layout
        m, n = small_feasible.A.shape
        np.testing.assert_allclose(
            r[lay.row_primal], reference[:m], rtol=1e-10
        )
        np.testing.assert_allclose(
            r[lay.row_dual], reference[m:m + n], rtol=1e-10
        )
        np.testing.assert_allclose(
            r[lay.row_xz], reference[m + n:m + 2 * n], rtol=1e-10
        )
        np.testing.assert_allclose(
            r[lay.row_yw], reference[m + 2 * n:], rtol=1e-10
        )

    def test_diagonal_update_is_2_n_plus_m_cells(self, small_feasible,
                                                 state):
        system = AugmentedNewtonSystem(small_feasible)
        rows, cols, values = system.diagonal_update(*state)
        m, n = small_feasible.A.shape
        assert rows.shape == (2 * (n + m),)
        assert np.all(values >= 0)

    def test_diagonal_update_matches_build(self, small_feasible, state):
        system = AugmentedNewtonSystem(small_feasible)
        M = system.build_matrix(*state)
        rows, cols, values = system.diagonal_update(*state)
        np.testing.assert_allclose(M[rows, cols], values)

    def test_infeasibility_norms(self, small_feasible, state):
        x, y, w, z = state
        system = AugmentedNewtonSystem(small_feasible)
        M = system.build_matrix(x, y, w, z)
        product = M @ system.state_vector(x, y, w, z)
        r = system.residual_from_product(product, 0.1)
        p_inf, d_inf = system.infeasibility_norms(r)
        assert p_inf == pytest.approx(
            np.max(np.abs(small_feasible.b - small_feasible.A @ x - w))
        )
        assert d_inf == pytest.approx(
            np.max(
                np.abs(small_feasible.c - small_feasible.A.T @ y + z)
            )
        )

    def test_extract_rejects_bad_shape(self, small_feasible):
        system = AugmentedNewtonSystem(small_feasible)
        with pytest.raises(ValueError, match="shape"):
            system.extract_steps(np.zeros(3))

    def test_nonneg_matrix_clamps_negative_state(self, small_feasible):
        # Solver 2-style negative iterates must not leak negatives in.
        m, n = small_feasible.A.shape
        system = AugmentedNewtonSystem(small_feasible)
        x = -np.ones(n)
        M = system.build_matrix(x, np.ones(m), np.ones(m), np.ones(n))
        assert M.min() >= 0.0

    def test_problem_without_negatives_has_no_compensation(self, rng):
        lp = random_feasible_lp(9, rng=rng, coefficient_range=(0.1, 1.0))
        system = AugmentedNewtonSystem(lp)
        assert system.k_x == 0
        assert system.k_y == 0
