"""Tests for solver settings validation."""

import pytest

from repro.core import (
    CrossbarSolverSettings,
    PDIPSettings,
    ScalableSolverSettings,
)


class TestPDIPSettings:
    def test_defaults_valid(self):
        PDIPSettings()

    @pytest.mark.parametrize("delta", [0.0, 1.0, -0.1])
    def test_delta_range(self, delta):
        with pytest.raises(ValueError, match="delta"):
            PDIPSettings(delta=delta)

    @pytest.mark.parametrize("scale", [0.0, 1.0])
    def test_step_scale_range(self, scale):
        with pytest.raises(ValueError, match="step_scale"):
            PDIPSettings(step_scale=scale)

    def test_max_iterations_positive(self):
        with pytest.raises(ValueError, match="max_iterations"):
            PDIPSettings(max_iterations=0)

    @pytest.mark.parametrize(
        "field", ["eps_primal", "eps_dual", "eps_gap"]
    )
    def test_tolerances_positive(self, field):
        with pytest.raises(ValueError, match=field):
            PDIPSettings(**{field: 0.0})

    def test_big_m_bound(self):
        with pytest.raises(ValueError, match="big_m"):
            PDIPSettings(big_m=1.0)

    def test_alpha_bound(self):
        with pytest.raises(ValueError, match="alpha"):
            PDIPSettings(alpha=0.99)

    def test_initial_value_positive(self):
        with pytest.raises(ValueError, match="initial_value"):
            PDIPSettings(initial_value=0.0)


class TestCrossbarSettings:
    def test_defaults_valid(self):
        settings = CrossbarSolverSettings()
        assert settings.dac_bits == 8
        assert settings.adc_bits == 8

    def test_headroom_bound(self):
        with pytest.raises(ValueError, match="headroom"):
            CrossbarSolverSettings(scale_headroom=0.9)

    def test_stall_positive(self):
        with pytest.raises(ValueError, match="stall"):
            CrossbarSolverSettings(stall_iterations=0)

    def test_retries_non_negative(self):
        with pytest.raises(ValueError, match="retries"):
            CrossbarSolverSettings(retries=-1)

    def test_frozen(self):
        import dataclasses

        with pytest.raises(dataclasses.FrozenInstanceError):
            CrossbarSolverSettings().retries = 5


class TestScalableSettings:
    def test_defaults_valid(self):
        settings = ScalableSolverSettings()
        assert settings.coupling == "state"
        assert settings.rhs_mode == "exact"
        assert settings.recovery == "coupled"
        assert settings.row_scaling is True

    @pytest.mark.parametrize("theta", [0.0, 1.5])
    def test_theta_range(self, theta):
        with pytest.raises(ValueError, match="theta"):
            ScalableSolverSettings(constant_theta=theta)

    def test_regularization_positive(self):
        with pytest.raises(ValueError, match="regularization"):
            ScalableSolverSettings(regularization=0.0)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("coupling", "bogus"),
            ("rhs_mode", "bogus"),
            ("recovery", "bogus"),
            ("step_policy", "bogus"),
        ],
    )
    def test_mode_strings_validated(self, field, value):
        with pytest.raises(ValueError, match="unknown"):
            ScalableSolverSettings(**{field: value})

    def test_ratio_bounds(self):
        with pytest.raises(ValueError, match="ratio_cap"):
            ScalableSolverSettings(ratio_cap=0.0)
        with pytest.raises(ValueError, match="ratio_floor"):
            ScalableSolverSettings(ratio_floor=10.0, ratio_cap=1.0)

    def test_positivity_floor(self):
        with pytest.raises(ValueError, match="positivity_floor"):
            ScalableSolverSettings(positivity_floor=0.0)
