"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestSolveCommand:
    def test_solve_runs(self, capsys):
        code = main(
            ["solve", "--constraints", "10", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scipy optimum" in out
        assert "relative error" in out
        assert "modeled hardware" in out

    def test_reference_solver_has_no_hardware_line(self, capsys):
        code = main(
            [
                "solve",
                "--constraints",
                "10",
                "--solver",
                "reference",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "modeled hardware" not in out

    def test_variation_accepted(self, capsys):
        assert (
            main(
                [
                    "solve",
                    "--constraints",
                    "10",
                    "--variation",
                    "10",
                ]
            )
            == 0
        )


class TestParasiticsCommand:
    def test_runs_and_reports_budget(self, capsys):
        assert main(["parasitics", "--budget", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "ir_drop_rel_err" in out
        assert "budget" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "fig99"])

    def test_figures_all_accepted(self):
        args = build_parser().parse_args(["figures", "all"])
        assert args.targets == ["all"]
