"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import build_parser, main
from repro.obs import read_trace_jsonl


class TestSolveCommand:
    def test_solve_runs(self, capsys):
        code = main(
            ["solve", "--constraints", "10", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scipy optimum" in out
        assert "relative error" in out
        assert "modeled hardware" in out

    def test_reference_solver_has_no_hardware_line(self, capsys):
        code = main(
            [
                "solve",
                "--constraints",
                "10",
                "--solver",
                "reference",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "modeled hardware" not in out

    def test_variation_accepted(self, capsys):
        assert (
            main(
                [
                    "solve",
                    "--constraints",
                    "10",
                    "--variation",
                    "10",
                ]
            )
            == 0
        )


class TestObservabilityFlags:
    def test_trace_out_writes_valid_jsonl(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        code = main(
            [
                "solve",
                "--constraints",
                "10",
                "--trace-out",
                str(trace),
            ]
        )
        assert code == 0
        assert "trace written" in capsys.readouterr().out
        events = read_trace_jsonl(trace)
        # Every line is standalone JSON with a known event kind.
        kinds = {event["kind"] for event in events}
        assert kinds <= {"span", "count", "gauge"}
        span_names = {
            e["name"] for e in events if e["kind"] == "span"
        }
        assert {"solve", "attempt", "iteration"} <= span_names

    def test_metrics_out_writes_prometheus_textfile(
        self, capsys, tmp_path
    ):
        metrics = tmp_path / "metrics.prom"
        code = main(
            [
                "solve",
                "--constraints",
                "10",
                "--metrics-out",
                str(metrics),
            ]
        )
        assert code == 0
        assert "metrics written" in capsys.readouterr().out
        body = metrics.read_text()
        assert "repro_analog_multiplies_total" in body
        for line in body.splitlines():
            if not line.startswith("#"):
                float(line.rsplit(" ", 1)[1])

    def test_both_flags_with_reliability_path(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        metrics = tmp_path / "m.prom"
        code = main(
            [
                "solve",
                "--constraints",
                "10",
                "--probe",
                "--trace-out",
                str(trace),
                "--metrics-out",
                str(metrics),
            ]
        )
        assert code == 0
        events = read_trace_jsonl(trace)
        span_names = {
            e["name"] for e in events if e["kind"] == "span"
        }
        assert "probe" in span_names
        assert metrics.read_text().startswith("# HELP")

    def test_default_leaves_no_files(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(["solve", "--constraints", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace written" not in out
        assert "metrics written" not in out
        assert list(tmp_path.iterdir()) == []

    def test_trace_works_for_reference_solver(self, capsys, tmp_path):
        # The reference solver accepts the flags; the trace is just a
        # valid (possibly empty) event stream.
        trace = tmp_path / "ref.jsonl"
        code = main(
            [
                "solve",
                "--constraints",
                "10",
                "--solver",
                "reference",
                "--trace-out",
                str(trace),
            ]
        )
        assert code == 0
        header = json.loads(trace.read_text().splitlines()[0])
        assert header["format"] == "repro-trace"


class TestParasiticsCommand:
    def test_runs_and_reports_budget(self, capsys):
        assert main(["parasitics", "--budget", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "ir_drop_rel_err" in out
        assert "budget" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "fig99"])

    def test_figures_all_accepted(self):
        args = build_parser().parse_args(["figures", "all"])
        assert args.targets == ["all"]


class TestSweepCommand:
    ARGS = [
        "sweep",
        "accuracy",
        "--solver",
        "reference",
        "--sizes",
        "8",
        "--variations",
        "0",
        "--trials",
        "2",
    ]

    def test_sweep_runs_and_prints_table(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "mean_rel_err" in out
        assert "2 executed" in out

    def test_sweep_resume_skips_cached_cells(self, capsys, tmp_path):
        cache = tmp_path / "cells.jsonl"
        assert main(self.ARGS + ["--resume", str(cache)]) == 0
        first = capsys.readouterr().out
        assert "2 executed, 0 restored" in first
        assert main(self.ARGS + ["--resume", str(cache)]) == 0
        second = capsys.readouterr().out
        assert "0 executed, 2 restored" in second
        # The table itself is byte-identical across the resume.
        assert first.splitlines()[:4] == second.splitlines()[:4]

    def test_sweep_workers_match_serial_output(self, capsys):
        assert main(self.ARGS) == 0
        serial = capsys.readouterr().out.splitlines()[:4]
        assert main(self.ARGS + ["--workers", "2"]) == 0
        parallel = capsys.readouterr().out.splitlines()[:4]
        assert serial == parallel

    def test_sweep_trace_out(self, capsys, tmp_path):
        trace = tmp_path / "sweep-trace.jsonl"
        assert main(self.ARGS + ["--trace-out", str(trace)]) == 0
        events = read_trace_jsonl(trace)
        cells = [
            e
            for e in events
            if e["kind"] == "span" and e["name"] == "sweep_cell"
        ]
        assert len(cells) == 2
        assert all("worker" in c["attrs"] for c in cells)

    def test_sweep_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            main(["sweep", "bogus"])

    def test_sweep_accepts_module_spec_reference(self, capsys):
        code = main(
            [
                "sweep",
                "tests.experiments.crash_spec:SPEC",
                "--solver",
                "reference",
                "--sizes",
                "8",
                "--variations",
                "0",
                "--trials",
                "2",
            ]
        )
        # The planted (8, 0, 1) crash is isolated, reported, and
        # turned into a nonzero exit — not a crashed sweep.
        assert code == 1
        out = capsys.readouterr().out
        assert "1 failed" in out
        assert "FAILED cell size=8 variation=0 trial=1" in out
        assert "cell_crashed" in out


class TestSolveExitCode:
    def test_success_exits_zero(self):
        assert main(["solve", "--constraints", "10", "--seed", "3"]) == 0

    def test_failed_solve_exits_nonzero(self, capsys):
        # A heavily stuck-off array fails the health probe; the
        # failure must surface as a nonzero exit for scripting.
        code = main(
            [
                "solve",
                "--constraints",
                "10",
                "--seed",
                "3",
                "--stuck-off",
                "0.4",
                "--probe",
            ]
        )
        assert code == 1
        assert "status" in capsys.readouterr().out


class TestServeCommand:
    ARGS = [
        "serve",
        "--jobs",
        "6",
        "--groups",
        "2",
        "--constraints",
        "10",
        "--seed",
        "7",
    ]

    def test_serve_prints_per_job_lines_and_summary(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert out.count("job-") == 6
        assert "warm" in out and "cold" in out
        assert "jobs/s" in out
        assert "cache hit rate" in out

    def test_serve_writes_records_jsonl(self, capsys, tmp_path):
        records = tmp_path / "records.jsonl"
        assert main(self.ARGS + ["--out", str(records)]) == 0
        lines = records.read_text().splitlines()
        assert len(lines) == 6
        record = json.loads(lines[0])
        assert record["status"] == "optimal"
        assert {"job_id", "member", "warm", "requeues"} <= set(record)

    def test_serve_trace_has_job_spans(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main(self.ARGS + ["--trace-out", str(trace)]) == 0
        events = read_trace_jsonl(trace)
        jobs = [
            e
            for e in events
            if e["kind"] == "span" and e["name"] == "service.job"
        ]
        assert len(jobs) == 6
        assert all("fingerprint" in j["attrs"] for j in jobs)

    def test_serve_survives_injected_fault(self, capsys):
        code = main(self.ARGS + ["--inject-fault", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "requeues=" in out  # at least one job was rescheduled

    def test_inject_fault_validates_member(self):
        with pytest.raises(SystemExit):
            main(self.ARGS + ["--inject-fault", "9"])

    def test_stats_final_flush_on_fast_batch(self, capsys):
        # Regression: a batch that drains between intervals must still
        # get a closing stats line covering every job.
        assert main(self.ARGS + ["--stats-every", "10"]) == 0
        out = capsys.readouterr().out
        stats = [l for l in out.splitlines() if l.startswith("[stats]")]
        assert len(stats) == 1
        assert "jobs=6" in stats[0]

    def test_stats_no_duplicate_final_line(self, capsys):
        # When the batch size lands exactly on an interval, the final
        # flush must not repeat the line the interval already printed.
        assert main(self.ARGS + ["--stats-every", "3"]) == 0
        out = capsys.readouterr().out
        stats = [l for l in out.splitlines() if l.startswith("[stats]")]
        assert len(stats) == 2
        assert "jobs=6" in stats[-1]

    def test_concurrent_workers_complete_all_jobs(self, capsys):
        code = main(
            self.ARGS
            + [
                "--workers", "0",  # auto: one worker per pool member
                "--tenants", "2",
                "--tenant", "tenant-00:2.0:2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "(6 ok, 0 failed)" in out
        assert out.count("job-") == 6

    def test_bad_tenant_spec_exits(self):
        with pytest.raises(SystemExit):
            main(self.ARGS + ["--tenant", "a:not-a-number"])

    def test_bad_listen_address_exits(self):
        with pytest.raises(SystemExit):
            main(self.ARGS + ["--listen", "nope"])


class TestBatchCommand:
    def make_jobs_file(self, tmp_path, count=5):
        from repro.service import synthesize_jobs, write_jobs_jsonl

        specs = synthesize_jobs(count, groups=2, constraints=10)
        return write_jobs_jsonl(specs, tmp_path / "jobs.jsonl")

    def test_batch_runs_jobs_file(self, capsys, tmp_path):
        path = self.make_jobs_file(tmp_path)
        assert main(["batch", str(path), "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert out.count("job-") == 5
        assert "jobs/s" in out

    def test_batch_rejects_empty_file(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(SystemExit):
            main(["batch", str(empty)])


class TestChaosFlag:
    def write_scenario(self, tmp_path):
        scenario = {
            "name": "cli-storm",
            "seed": 7,
            "events": [
                {
                    "at_job": 1,
                    "kind": "stuck_cells",
                    "member": 0,
                    "row_fraction": 1.0,
                },
                {"at_job": 3, "kind": "queue_pulse", "jobs": 2,
                 "constraints": 9},
            ],
        }
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(scenario))
        return path

    def base_args(self):
        return [
            "serve", "--jobs", "6", "--groups", "2",
            "--constraints", "10", "--seed", "7",
            "--fallback", "reference",
        ]

    def test_chaos_scenario_runs_and_reports(self, capsys, tmp_path):
        path = self.write_scenario(tmp_path)
        assert main(self.base_args() + ["--chaos", str(path)]) == 0
        out = capsys.readouterr().out
        assert "chaos:         2/2 events fired (cli-storm)" in out
        assert out.count("pulse-cli-storm-") == 2

    def test_chaos_records_are_deterministic(self, capsys, tmp_path):
        path = self.write_scenario(tmp_path)
        outs = []
        for name in ("a.jsonl", "b.jsonl"):
            records = tmp_path / name
            assert (
                main(
                    self.base_args()
                    + ["--chaos", str(path), "--out", str(records)]
                )
                == 0
            )
            outs.append(records.read_bytes())
        assert outs[0] == outs[1]

    def test_missing_scenario_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="not found"):
            main(
                self.base_args()
                + ["--chaos", str(tmp_path / "nope.json")]
            )

    def test_deadline_flag_accepted(self, capsys):
        assert main(self.base_args() + ["--deadline", "30"]) == 0


class TestTelemetryFlags:
    def base_args(self):
        return [
            "serve", "--jobs", "8", "--groups", "2",
            "--constraints", "10", "--seed", "7",
            "--fallback", "reference",
        ]

    def test_stats_every_prints_stats_lines(self, capsys):
        assert main(self.base_args() + ["--stats-every", "3"]) == 0
        out = capsys.readouterr().out
        stats = [line for line in out.splitlines() if line.startswith("[stats]")]
        # Every 3rd completion plus the closing line: jobs 3, 6, 8.
        assert len(stats) == 3
        assert "p99=" in stats[-1]
        assert "energy/job=" in stats[-1]
        assert "tier=NORMAL" in stats[-1]

    def test_no_stats_lines_by_default(self, capsys):
        assert main(self.base_args()) == 0
        assert "[stats]" not in capsys.readouterr().out

    def test_stats_do_not_change_record_bytes(self, capsys, tmp_path):
        outs = []
        for name, extra in (
            ("plain.jsonl", []),
            ("telem.jsonl", ["--stats-every", "2"]),
        ):
            records = tmp_path / name
            assert (
                main(self.base_args() + ["--out", str(records)] + extra)
                == 0
            )
            outs.append(records.read_bytes())
        assert outs[0] == outs[1]

    def test_summary_includes_latency_and_energy(self, capsys):
        assert main(self.base_args()) == 0
        out = capsys.readouterr().out
        assert "latency:" in out and "p50" in out and "p99" in out
        assert "energy:" in out and "J/job" in out

    def test_records_carry_energy(self, capsys, tmp_path):
        records = tmp_path / "records.jsonl"
        assert main(self.base_args() + ["--out", str(records)]) == 0
        payloads = [
            json.loads(line)
            for line in records.read_text().splitlines()
        ]
        assert all("energy_j" in p for p in payloads)
        assert any(p["energy_j"] > 0 for p in payloads)

    def test_metrics_out_includes_registry_series(self, capsys, tmp_path):
        metrics = tmp_path / "m.prom"
        assert (
            main(self.base_args() + ["--metrics-out", str(metrics)]) == 0
        )
        body = metrics.read_text()
        assert "repro_service_latency_s_bucket" in body
        assert "repro_service_job_energy_j_sum" in body
        assert "repro_slo_availability_budget_remaining" in body

    def storm_scenario(self, tmp_path):
        # Degrade live members (stuck cells + drift) so analog attempts
        # fail while still acquiring a pool member — those failures feed
        # the degradation window and force a brownout tier change, one
        # of the flight-recorder trip triggers.  (member_death alone
        # does not: dead members are never acquired, so no samples.)
        scenario = {
            "name": "storm",
            "seed": 7,
            "events": [
                {"at_job": 2, "kind": "stuck_cells", "member": 0,
                 "row_fraction": 0.5},
                {"at_job": 5, "kind": "member_death", "member": 1},
                {"at_job": 8, "kind": "drift", "member": 0,
                 "magnitude": 0.2},
            ],
        }
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(scenario))
        return path

    def test_flight_dir_dumps_on_chaos_trip(self, capsys, tmp_path):
        path = self.storm_scenario(tmp_path)
        flights = tmp_path / "flights"
        code = main(
            self.base_args()
            + [
                "--jobs", "24",
                "--chaos", str(path),
                "--flight-dir", str(flights),
            ]
        )
        assert code == 0
        dumps = sorted(flights.glob("flight-*.jsonl"))
        assert dumps, "expected at least one flight recording"
        events = [json.loads(line) for line in dumps[0].read_text().splitlines()]
        assert events[-1]["kind"] == "trip"
        assert "flight recordings:" in capsys.readouterr().out

    def test_trips_without_flight_dir_are_reported(self, capsys, tmp_path):
        path = self.storm_scenario(tmp_path)
        code = main(
            self.base_args() + ["--jobs", "24", "--chaos", str(path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trip(s) not dumped" in out
        assert "--flight-dir" in out
