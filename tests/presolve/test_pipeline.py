"""Presolve pipeline exactness: reduce -> solve -> postsolve round trips.

The contract under test (see ``repro.presolve.pipeline``):

- reductions never change the optimum — solving the reduced problem
  and postsolving matches a direct solve of the original within solver
  tolerance;
- eliminated variables come back as exactly ``0.0`` (not merely small);
- equilibration scales are exact powers of two, so un-scaling is a
  float exponent shift, never a rounding multiply;
- terminal verdicts (SOLVED / INFEASIBLE / UNBOUNDED) carry
  certificates and map onto the solver family's result vocabulary with
  ``FailureReason.INFEASIBLE_PRESOLVE`` provenance.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import solve_scipy
from repro.core.problem import LinearProgram
from repro.core.result import FailureReason, SolveStatus
from repro.crossbar import dynamic_range_report
from repro.devices import YAKOPCIC_NAECON14
from repro.presolve import (
    PresolveStatus,
    coefficient_decades,
    detect_infeasible,
    presolve,
)
from repro.workloads import random_feasible_lp, random_infeasible_lp

OBJECTIVE_RTOL = 1e-6


def planted_reduction_lp(seed: int) -> LinearProgram:
    """A feasible LP with one instance of every reduction planted.

    Starts from a random feasible core and appends, in original
    coordinates the postsolve must restore:

    - a proportional duplicate of row 0 with a looser bound;
    - an empty row with a non-negative right-hand side;
    - a redundant singleton row (``-x_0 <= 1``);
    - a forcing singleton row pinning a fresh column at zero;
    - an empty column with a non-positive objective coefficient;
    - a bit-identical duplicate of column 0 with a smaller reward.
    """
    rng = np.random.default_rng(seed)
    core = random_feasible_lp(8, rng=rng)
    m, n = core.A.shape
    A = np.zeros((m + 4, n + 3))
    A[:m, :n] = core.A
    b = np.concatenate([core.b, np.zeros(4)])
    c = np.concatenate([core.c, np.zeros(3)])
    # Proportional duplicate of row 0, looser by one unit.
    A[m, :n] = 2.0 * core.A[0]
    b[m] = 2.0 * core.b[0] + 1.0
    # Empty row, b >= 0: vacuous.
    b[m + 1] = 0.5
    # Redundant singleton: -x_0 <= 1 is implied by x_0 >= 0.
    A[m + 2, 0] = -1.0
    b[m + 2] = 1.0
    # Forcing singleton: x_n <= 0 pins the fresh column at zero even
    # though its reward is positive.
    A[m + 3, n] = 1.0
    b[m + 3] = 0.0
    c[n] = 3.0
    # Empty column with no reward: fixed at zero.
    c[n + 1] = -2.0
    # Bit-identical duplicate of column 0 with a smaller coefficient.
    A[: m + 4, n + 2] = A[: m + 4, 0]
    c[n + 2] = core.c[0] - 1.0
    return LinearProgram(c=c, A=A, b=b, name=f"planted-{seed}")


class TestRoundTrip:
    def test_planted_reductions_all_fire(self):
        presolved = presolve(planted_reduction_lp(3))
        report = presolved.report
        assert report.status is PresolveStatus.REDUCED
        assert report.duplicate_rows >= 1
        assert report.empty_rows >= 1
        assert report.redundant_rows >= 1
        assert report.forced_cols >= 1
        assert report.empty_cols >= 1
        assert report.duplicate_cols >= 1
        assert report.rows_after < report.rows_before
        assert report.cols_after < report.cols_before
        # The one-line summary carries the shape transition.
        assert f"{report.rows_before}x{report.cols_before}" in report.summary()

    @pytest.mark.parametrize("seed", [0, 3, 11])
    @pytest.mark.parametrize("scaling", ["ruiz", "geometric", "none"])
    def test_postsolve_matches_direct_solve(self, seed, scaling):
        problem = planted_reduction_lp(seed)
        direct = solve_scipy(problem)
        assert direct.is_optimal
        presolved = presolve(problem, scaling=scaling)
        reduced = solve_scipy(presolved.problem)
        assert reduced.is_optimal
        restored = presolved.postsolve(reduced)
        assert restored.objective == pytest.approx(
            direct.objective, rel=OBJECTIVE_RTOL
        )
        # The restored point is primal feasible on the original.
        slack = problem.b - problem.A @ restored.x
        assert np.all(restored.x >= -1e-9)
        assert np.all(slack >= -1e-7)
        np.testing.assert_allclose(restored.w, slack, atol=1e-7)

    @pytest.mark.parametrize("scaling", ["ruiz", "geometric"])
    def test_eliminated_variables_exactly_zero(self, scaling):
        problem = planted_reduction_lp(7)
        presolved = presolve(problem, scaling=scaling)
        restored = presolved.postsolve(solve_scipy(presolved.problem))
        n = problem.A.shape[1]
        dropped = sorted(set(range(n)) - set(presolved.col_index.tolist()))
        assert dropped, "the planted LP must lose at least one column"
        for j in dropped:
            assert restored.x[j] == 0.0  # exact, not approx

    def test_postsolve_rejects_wrong_shape(self):
        presolved = presolve(planted_reduction_lp(0))
        good = solve_scipy(presolved.problem)
        import dataclasses

        bad = dataclasses.replace(good, x=np.zeros(good.x.shape[0] + 1))
        with pytest.raises(ValueError, match="variables"):
            presolved.postsolve(bad)

    @given(seed=st.integers(0, 2**31 - 1), m=st.integers(4, 16))
    @settings(max_examples=25, deadline=None)
    def test_random_lp_round_trip_property(self, seed, m):
        rng = np.random.default_rng(seed)
        problem = random_feasible_lp(m, rng=rng)
        direct = solve_scipy(problem)
        if not direct.is_optimal:  # pragma: no cover - generator rarely fails
            return
        presolved = presolve(problem)
        if presolved.report.status is not PresolveStatus.REDUCED:
            return
        reduced = solve_scipy(presolved.problem)
        if not reduced.is_optimal:  # pragma: no cover
            return
        restored = presolved.postsolve(reduced)
        assert restored.objective == pytest.approx(
            direct.objective, rel=1e-5, abs=1e-7
        )


class TestTerminalVerdicts:
    def test_reduced_to_empty_is_solved_at_zero(self):
        problem = LinearProgram(
            c=-np.ones(5), A=np.eye(5), b=np.zeros(5), name="all-pinned"
        )
        presolved = presolve(problem)
        assert presolved.report.status is PresolveStatus.SOLVED
        assert presolved.problem is None
        result = presolved.solution()
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == 0.0
        assert result.iterations == 0
        assert np.array_equal(result.x, np.zeros(5))
        with pytest.raises(ValueError, match="solution"):
            presolved.postsolve(result)

    def test_empty_row_infeasibility_certificate(self):
        A = np.array([[1.0, 1.0], [0.0, 0.0]])
        problem = LinearProgram(
            c=np.ones(2), A=A, b=np.array([4.0, -1.0]), name="bad-row"
        )
        presolved = presolve(problem)
        assert presolved.report.status is PresolveStatus.INFEASIBLE
        assert "b[1]" in presolved.report.detail
        result = presolved.solution()
        assert result.status is SolveStatus.INFEASIBLE
        assert result.failure_reason is FailureReason.INFEASIBLE_PRESOLVE
        assert result.iterations == 0
        assert detect_infeasible(problem) == presolved.report.detail

    def test_planted_infeasible_generator_is_detected(self):
        rng = np.random.default_rng(5)
        problem = random_infeasible_lp(12, rng=rng)
        certificate = detect_infeasible(problem)
        assert certificate is not None
        assert presolve(problem).report.status is PresolveStatus.INFEASIBLE

    def test_feasible_lp_yields_no_certificate(self):
        rng = np.random.default_rng(5)
        assert detect_infeasible(random_feasible_lp(12, rng=rng)) is None

    def test_empty_column_unboundedness_certificate(self):
        A = np.array([[1.0, 0.0], [2.0, 0.0]])
        problem = LinearProgram(
            c=np.array([1.0, 1.0]), A=A, b=np.array([3.0, 8.0]), name="free"
        )
        presolved = presolve(problem)
        assert presolved.report.status is PresolveStatus.UNBOUNDED
        assert "unbounded" in presolved.report.detail
        result = presolved.solution()
        # The solver family folds unbounded into INFEASIBLE; the report
        # keeps the precise distinction and the reason records the
        # certificate's provenance.
        assert result.status is SolveStatus.INFEASIBLE
        assert result.failure_reason is FailureReason.INFEASIBLE_PRESOLVE
        # Unboundedness is not primal infeasibility, so the admission
        # screen must NOT reject the instance.
        assert detect_infeasible(problem) is None

    def test_solution_refuses_reduced_status(self):
        presolved = presolve(planted_reduction_lp(1))
        with pytest.raises(ValueError, match="postsolve"):
            presolved.solution()


def badly_scaled_lp(seed: int = 0) -> LinearProgram:
    """A feasible LP whose coefficients span ~6 decades."""
    rng = np.random.default_rng(seed)
    base = random_feasible_lp(6, rng=rng)
    scale_r = 10.0 ** rng.integers(-3, 4, base.A.shape[0])
    scale_c = 10.0 ** rng.integers(-3, 4, base.A.shape[1])
    return LinearProgram(
        c=base.c * scale_c,
        A=base.A * scale_r[:, None] * scale_c[None, :],
        b=base.b * scale_r,
        name="badly-scaled",
    )


class TestScaling:
    @pytest.mark.parametrize("scaling", ["ruiz", "geometric"])
    def test_scales_are_exact_powers_of_two(self, scaling):
        presolved = presolve(badly_scaled_lp(), scaling=scaling)
        for scale in (presolved.row_scale, presolved.col_scale):
            assert np.all(scale > 0.0)
            assert np.array_equal(np.exp2(np.round(np.log2(scale))), scale)

    def test_ruiz_reduces_decades(self):
        problem = badly_scaled_lp()
        before = coefficient_decades(problem.A)
        presolved = presolve(problem, scaling="ruiz")
        report = presolved.report
        assert report.decades_before == pytest.approx(before)
        assert report.decades_after < report.decades_before

    def test_scaled_round_trip_objective(self):
        problem = badly_scaled_lp(2)
        direct = solve_scipy(problem)
        presolved = presolve(problem, scaling="ruiz")
        restored = presolved.postsolve(solve_scipy(presolved.problem))
        assert restored.objective == pytest.approx(
            direct.objective, rel=OBJECTIVE_RTOL
        )

    def test_unknown_scaling_rejected(self):
        with pytest.raises(ValueError, match="scaling"):
            presolve(badly_scaled_lp(), scaling="frobnicate")

    def test_dynamic_range_report_improves_after_equilibration(self):
        problem = badly_scaled_lp()
        raw = dynamic_range_report(problem.A, YAKOPCIC_NAECON14)
        presolved = presolve(problem, scaling="ruiz")
        scaled = dynamic_range_report(
            presolved.problem.A, YAKOPCIC_NAECON14
        )
        assert scaled.decades_spanned < raw.decades_spanned
        assert scaled.floored_fraction <= raw.floored_fraction
        assert raw.decades_representable == scaled.decades_representable
        payload = scaled.to_dict()
        assert set(payload) == {
            "decades_spanned",
            "decades_representable",
            "floored_fraction",
            "fits",
        }


class TestReportSerialization:
    def test_report_and_recipe_to_dict(self):
        presolved = presolve(planted_reduction_lp(4))
        payload = presolved.to_dict()
        assert payload["report"]["status"] == "reduced"
        assert payload["report"]["rows_before"] == presolved.report.rows_before
        assert len(payload["row_index"]) == presolved.report.rows_after
        assert len(payload["col_index"]) == presolved.report.cols_after
        assert all(isinstance(v, float) for v in payload["row_scale"])

    def test_determinism(self):
        problem = planted_reduction_lp(9)
        first = presolve(problem)
        second = presolve(problem)
        assert first.report == second.report
        assert np.array_equal(first.problem.A, second.problem.A)
        assert np.array_equal(first.row_scale, second.row_scale)
        assert np.array_equal(first.col_scale, second.col_scale)
