"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.core import LinearProgram
from repro.workloads import random_feasible_lp, random_infeasible_lp


@pytest.fixture
def rng():
    """Deterministic generator; reseeded per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_lp():
    """A hand-checked 2-variable LP.

    max 3x1 + 2x2  s.t.  x1 + x2 <= 4,  x1 + 3x2 <= 6,  x >= 0.
    Optimum at (4, 0) with value 12.
    """
    return LinearProgram(
        c=np.array([3.0, 2.0]),
        A=np.array([[1.0, 1.0], [1.0, 3.0]]),
        b=np.array([4.0, 6.0]),
        name="tiny",
    )


@pytest.fixture
def small_feasible(rng):
    """A random feasible LP with 12 constraints."""
    return random_feasible_lp(12, rng=rng)


@pytest.fixture
def small_infeasible(rng):
    """A random planted-infeasible LP with 12 constraints."""
    return random_infeasible_lp(12, rng=rng)
