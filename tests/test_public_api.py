"""Public-API surface tests."""

import importlib

import pytest

import repro
from repro import exceptions


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.crossbar",
            "repro.devices",
            "repro.noc",
            "repro.baselines",
            "repro.costmodel",
            "repro.workloads",
            "repro.experiments",
            "repro.analysis",
            "repro.obs",
            "repro.reliability",
            "repro.service",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in mod.__all__:
            assert hasattr(mod, name), f"{module}.{name}"

    def test_version(self):
        assert repro.__version__ == "1.0.0"


class TestExceptionHierarchy:
    def test_all_errors_are_repro_errors(self):
        for cls in (
            exceptions.MappingError,
            exceptions.CrossbarSolveError,
            exceptions.ConvergenceError,
            exceptions.InfeasibleProblemError,
            exceptions.PartitionError,
            exceptions.ServiceError,
            exceptions.QueueFullError,
        ):
            assert issubclass(cls, exceptions.ReproError)
            assert issubclass(cls, Exception)

    def test_catchable_via_base(self):
        with pytest.raises(exceptions.ReproError):
            raise exceptions.MappingError("negative coefficient")
