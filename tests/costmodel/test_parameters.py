"""Tests for cost-model parameter bundles and their provenance."""

import dataclasses

import pytest

from repro.costmodel import (
    DEFAULT_COST_MODEL,
    CostModelParameters,
    CpuModelParameters,
    PeripheralParameters,
)


class TestCpuAnchors:
    def test_power_consistent_with_paper_energy(self):
        # 218.1 J / 6.23 s ≈ 35 W; the second anchor (1023.1 J / 30 s)
        # gives 34.1 W — the preset must sit between them.
        params = CpuModelParameters()
        assert 34.0 <= params.power_w <= 35.1
        assert params.power_w * params.linprog_anchor_seconds == (
            pytest.approx(218.1, rel=0.01)
        )

    def test_infeasible_anchor_slower(self):
        params = CpuModelParameters()
        assert (
            params.linprog_infeasible_anchor_seconds
            > params.linprog_anchor_seconds
        )

    def test_anchor_size_is_paper_grid_max(self):
        assert CpuModelParameters().anchor_constraints == 1024


class TestPeripherals:
    def test_adc_slower_and_costlier_than_dac(self):
        # 8-bit SAR ADCs lag DACs at comparable power budgets.
        peri = PeripheralParameters()
        assert peri.adc_latency_s >= peri.dac_latency_s
        assert peri.adc_energy_j >= peri.dac_energy_j

    def test_all_constants_positive(self):
        peri = PeripheralParameters()
        for field in dataclasses.fields(peri):
            assert getattr(peri, field.name) > 0, field.name


class TestBundle:
    def test_default_bundle_composes_presets(self):
        assert isinstance(
            DEFAULT_COST_MODEL.peripherals, PeripheralParameters
        )
        assert isinstance(DEFAULT_COST_MODEL.cpu, CpuModelParameters)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            CostModelParameters().cpu = None
