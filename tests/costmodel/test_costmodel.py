"""Tests for the latency/energy cost model (Figs. 6-7 methodology)."""

import numpy as np
import pytest

from repro.core import solve_crossbar, solve_reference
from repro.costmodel import (
    CpuModelParameters,
    calibrate_local,
    cpu_energy,
    estimate_energy,
    estimate_latency,
    linprog_latency,
    software_pdip_latency,
)
from repro.devices import YAKOPCIC_NAECON14
from repro.workloads import random_feasible_lp


@pytest.fixture(scope="module")
def solved():
    rng = np.random.default_rng(3)
    problem = random_feasible_lp(15, rng=rng)
    result = solve_crossbar(problem, rng=np.random.default_rng(0))
    return problem, result


class TestLatencyEstimate:
    def test_breakdown_positive_and_sums(self, solved):
        _, result = solved
        breakdown = estimate_latency(result, YAKOPCIC_NAECON14)
        assert breakdown.write_s > 0
        assert breakdown.analog_s > 0
        assert breakdown.conversion_s > 0
        assert breakdown.digital_s > 0
        assert breakdown.total_s == pytest.approx(
            breakdown.write_s
            + breakdown.analog_s
            + breakdown.conversion_s
            + breakdown.digital_s
        )

    def test_writes_dominate(self, solved):
        # The paper's O(N) claim rests on writes being the per-
        # iteration bottleneck.
        _, result = solved
        breakdown = estimate_latency(result, YAKOPCIC_NAECON14)
        assert breakdown.write_s > breakdown.analog_s
        assert breakdown.write_s > breakdown.conversion_s

    def test_rejects_software_result(self, solved):
        problem, _ = solved
        reference = solve_reference(problem)
        with pytest.raises(ValueError, match="counters"):
            estimate_latency(reference, YAKOPCIC_NAECON14)


class TestEnergyEstimate:
    def test_breakdown_positive_and_sums(self, solved):
        _, result = solved
        breakdown = estimate_energy(result, YAKOPCIC_NAECON14)
        assert breakdown.total_j == pytest.approx(
            breakdown.write_j
            + breakdown.analog_j
            + breakdown.conversion_j
            + breakdown.digital_j
        )
        assert breakdown.total_j > 0

    def test_density_scales_analog_term(self, solved):
        _, result = solved
        sparse = estimate_energy(
            result, YAKOPCIC_NAECON14, cell_density=0.1
        )
        dense = estimate_energy(
            result, YAKOPCIC_NAECON14, cell_density=1.0
        )
        assert dense.analog_j == pytest.approx(10 * sparse.analog_j)

    def test_rejects_bad_density(self, solved):
        _, result = solved
        with pytest.raises(ValueError, match="density"):
            estimate_energy(result, YAKOPCIC_NAECON14, cell_density=0.0)


class TestCpuModel:
    def test_anchor_reproduced(self):
        params = CpuModelParameters()
        assert linprog_latency(1024, params=params) == pytest.approx(
            6.23, rel=1e-6
        )
        assert linprog_latency(
            1024, infeasible=True, params=params
        ) == pytest.approx(30.0, rel=1e-6)

    def test_cubic_scaling(self):
        # Away from the overhead floor, halving N cuts ~8x.
        t_full = linprog_latency(1024) - 5e-3
        t_half = linprog_latency(512) - 5e-3
        assert t_full / t_half == pytest.approx(8.0, rel=0.02)

    def test_overhead_floor_dominates_small(self):
        assert linprog_latency(4) == pytest.approx(5e-3, rel=0.05)

    def test_pdip_matlab_factor(self):
        assert software_pdip_latency(256) == pytest.approx(
            2.0 * linprog_latency(256)
        )

    def test_energy_at_package_power(self):
        assert cpu_energy(6.23) == pytest.approx(218.05, rel=1e-3)
        with pytest.raises(ValueError):
            cpu_energy(-1.0)

    def test_calibrate_local_returns_sane_params(self, rng):
        params = calibrate_local(
            sizes=(16, 32), trials=1, rng=rng
        )
        assert params.linprog_anchor_seconds > 0
        assert params.overhead_seconds > 0
        # Infeasible/feasible ratio preserved from the paper.
        assert (
            params.linprog_infeasible_anchor_seconds
            / params.linprog_anchor_seconds
        ) == pytest.approx(30.0 / 6.23, rel=1e-6)
