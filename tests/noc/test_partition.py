"""Tests for block partitioning."""

import numpy as np
import pytest

from repro.exceptions import PartitionError
from repro.noc import BlockPartition


class TestGeometry:
    def test_exact_division(self):
        part = BlockPartition(32, 32, 16)
        assert part.grid_rows == 2
        assert part.grid_cols == 2
        assert part.n_tiles == 4

    def test_ragged_edges(self):
        part = BlockPartition(40, 20, 16)
        assert part.grid_rows == 3
        assert part.grid_cols == 2
        assert part.row_slice(2) == slice(32, 40)
        assert part.col_slice(1) == slice(16, 20)

    def test_single_tile(self):
        part = BlockPartition(8, 8, 16)
        assert part.n_tiles == 1
        assert part.row_slice(0) == slice(0, 8)

    def test_tiles_enumeration(self):
        part = BlockPartition(20, 20, 10)
        assert part.tiles() == [(0, 0), (0, 1), (1, 0), (1, 1)]

    @pytest.mark.parametrize(
        "n_out,n_in,tile", [(0, 4, 2), (4, 0, 2), (4, 4, 0)]
    )
    def test_validation(self, n_out, n_in, tile):
        with pytest.raises(PartitionError):
            BlockPartition(n_out, n_in, tile)

    def test_index_bounds(self):
        part = BlockPartition(16, 16, 8)
        with pytest.raises(PartitionError, match="out of range"):
            part.row_slice(5)
        with pytest.raises(PartitionError, match="out of range"):
            part.col_slice(-1)


class TestBlocks:
    def test_blocks_tile_the_matrix(self, rng):
        matrix = rng.uniform(size=(25, 18))
        part = BlockPartition(25, 18, 8)
        reassembled = np.zeros_like(matrix)
        for r, c in part.tiles():
            reassembled[part.row_slice(r), part.col_slice(c)] = (
                part.block(matrix, r, c)
            )
        np.testing.assert_array_equal(reassembled, matrix)

    def test_block_shape_bounded_by_tile(self, rng):
        matrix = rng.uniform(size=(25, 18))
        part = BlockPartition(25, 18, 8)
        for r, c in part.tiles():
            block = part.block(matrix, r, c)
            assert block.shape[0] <= 8
            assert block.shape[1] <= 8

    def test_shape_mismatch_rejected(self, rng):
        part = BlockPartition(10, 10, 4)
        with pytest.raises(PartitionError, match="shape"):
            part.block(np.ones((9, 10)), 0, 0)
