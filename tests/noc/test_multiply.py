"""Tests for the tiled (NoC) matrix operator."""

import numpy as np
import pytest

from repro.devices import YAKOPCIC_NAECON14, UniformVariation
from repro.exceptions import CrossbarSolveError, MappingError
from repro.noc import HierarchicalNoc, TiledMatrixOperator


def tiled(rng, matrix, tile=8, **kwargs):
    kwargs.setdefault("params", YAKOPCIC_NAECON14)
    kwargs.setdefault("rng", rng)
    return TiledMatrixOperator(matrix, tile, **kwargs)


class TestMultiply:
    def test_matches_dense_ideal(self, rng):
        matrix = rng.uniform(0.1, 1.0, size=(20, 14))
        op = tiled(rng, matrix, dac_bits=None, adc_bits=None)
        x = rng.uniform(-1, 1, size=14)
        np.testing.assert_allclose(op.multiply(x), matrix @ x, rtol=1e-9)

    def test_matches_dense_8bit(self, rng):
        matrix = rng.uniform(0.1, 1.0, size=(20, 20))
        op = tiled(rng, matrix)
        x = rng.uniform(-1, 1, size=20)
        ref = matrix @ x
        assert np.max(np.abs(op.multiply(x) - ref)) <= 0.02 * np.max(
            np.abs(ref)
        )

    def test_tile_count(self, rng):
        matrix = rng.uniform(0.1, 1.0, size=(20, 14))
        op = tiled(rng, matrix, tile=8)
        assert op.n_tiles == 3 * 2

    def test_variation_propagates(self, rng):
        matrix = rng.uniform(0.1, 1.0, size=(16, 16))
        x = rng.uniform(-1, 1, size=16)
        noisy = tiled(
            rng,
            matrix,
            variation=UniformVariation(0.2),
            dac_bits=None,
            adc_bits=None,
        ).multiply(x)
        assert not np.allclose(noisy, matrix @ x, rtol=1e-6)

    def test_noc_costs_accumulate(self, rng):
        matrix = rng.uniform(0.1, 1.0, size=(20, 20))
        op = tiled(rng, matrix)
        op.multiply(rng.uniform(-1, 1, size=20))
        assert op.noc_transfers > 0
        assert op.noc_latency_s > 0
        assert op.noc_energy_j > 0

    def test_zero_input(self, rng):
        op = tiled(rng, np.ones((10, 10)))
        np.testing.assert_array_equal(
            op.multiply(np.zeros(10)), np.zeros(10)
        )

    def test_hierarchical_topology_supported(self, rng):
        matrix = rng.uniform(0.1, 1.0, size=(16, 16))
        op = TiledMatrixOperator(
            matrix,
            8,
            params=YAKOPCIC_NAECON14,
            rng=rng,
            topology=HierarchicalNoc(2, 2),
        )
        x = rng.uniform(-1, 1, size=16)
        ref = matrix @ x
        assert np.max(np.abs(op.multiply(x) - ref)) <= 0.02 * np.max(
            np.abs(ref)
        )


class TestSolve:
    def test_block_refinement_converges(self, rng):
        matrix = rng.uniform(0.0, 0.2, size=(24, 24)) + np.diag(
            np.full(24, 8.0)
        )
        op = tiled(rng, matrix)
        b = rng.uniform(-1, 1, size=24)
        x = op.solve(b)
        ref = np.linalg.solve(matrix, b)
        assert np.max(np.abs(x - ref)) <= 0.05 * np.max(np.abs(ref))
        assert op.tile_solves > 0

    def test_requires_square(self, rng):
        op = tiled(rng, np.ones((10, 8)))
        with pytest.raises(CrossbarSolveError, match="square"):
            op.solve(np.ones(10))

    def test_non_convergence_raises(self, rng):
        # Strongly coupled off-diagonal blocks: block Jacobi diverges.
        matrix = rng.uniform(0.9, 1.0, size=(16, 16)) + np.eye(16)
        op = tiled(rng, matrix)
        with pytest.raises(CrossbarSolveError, match="converge"):
            op.solve(np.ones(16), max_refinements=5)

    def test_zero_rhs(self, rng):
        matrix = np.diag(np.full(8, 2.0))
        op = tiled(rng, matrix, tile=4)
        np.testing.assert_array_equal(
            op.solve(np.zeros(8)), np.zeros(8)
        )


class TestValidation:
    def test_rejects_negative_matrix(self, rng):
        with pytest.raises(MappingError, match="negative"):
            tiled(rng, np.array([[-1.0]]))

    def test_rejects_bad_headroom(self, rng):
        with pytest.raises(ValueError, match="headroom"):
            tiled(rng, np.ones((4, 4)), scale_headroom=0.5)

    def test_input_shape_checked(self, rng):
        op = tiled(rng, np.ones((8, 6)))
        with pytest.raises(ValueError, match="shape"):
            op.multiply(np.zeros(8))

    def test_write_report_covers_all_tiles(self, rng):
        matrix = rng.uniform(0.1, 1.0, size=(20, 20))
        op = tiled(rng, matrix, tile=8)
        report = op.write_report
        assert report.cells_written > 0
        assert report.latency_s > 0
