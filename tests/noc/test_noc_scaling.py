"""Topology scaling behavior across grid sizes."""

import numpy as np
import pytest

from repro.noc import HierarchicalNoc, MeshNoc, NocParameters


class TestDiameterScaling:
    def test_mesh_diameter_linear(self):
        diameters = [
            MeshNoc(g, g).hops((0, 0), (g - 1, g - 1))
            for g in (4, 8, 16, 32)
        ]
        # Manhattan diameter is 2(g-1): doubling g roughly doubles it.
        for g, diameter in zip((4, 8, 16, 32), diameters):
            assert diameter == 2 * (g - 1)

    def test_hierarchical_diameter_logarithmic(self):
        diameters = [
            HierarchicalNoc(g, g).hops((0, 0), (g - 1, g - 1))
            for g in (2, 4, 8, 16)
        ]
        # +2 hops (one tree level) per grid doubling.
        differences = [
            b - a for a, b in zip(diameters, diameters[1:])
        ]
        assert all(d == 2 for d in differences)

    def test_crossover_grid_size(self):
        # Mesh wins tiny grids (hops 2 vs 2 at 2x2), hierarchy wins
        # large grids.
        small_mesh = MeshNoc(2, 2).hops((0, 0), (1, 1))
        small_hier = HierarchicalNoc(2, 2).hops((0, 0), (1, 1))
        assert small_hier >= small_mesh
        big_mesh = MeshNoc(32, 32).hops((0, 0), (31, 31))
        big_hier = HierarchicalNoc(32, 32).hops((0, 0), (31, 31))
        assert big_hier < big_mesh


class TestReductionScaling:
    @pytest.mark.parametrize("grid", [2, 4, 8])
    def test_total_hops_grow_with_grid(self, grid):
        mesh = MeshNoc(grid, grid)
        sources = [(r, c) for r in range(grid) for c in range(grid)]
        report = mesh.route_reduction(sources, (0, 0))
        # Sum of Manhattan distances to the corner of a g x g grid.
        expected = sum(r + c for r in range(grid) for c in range(grid))
        assert report.total_hops == expected

    def test_energy_proportional_to_lines(self):
        narrow = NocParameters(lines_per_transfer=32)
        wide = NocParameters(lines_per_transfer=128)
        sources = [(0, c) for c in range(4)]
        e_narrow = MeshNoc(1, 4, narrow).route_reduction(
            sources, (0, 0)
        ).energy_j
        e_wide = MeshNoc(1, 4, wide).route_reduction(
            sources, (0, 0)
        ).energy_j
        assert e_wide == pytest.approx(4 * e_narrow)

    def test_destination_choice_changes_critical_path(self):
        mesh = MeshNoc(1, 8)
        sources = [(0, c) for c in range(8)]
        corner = mesh.route_reduction(sources, (0, 0))
        center = mesh.route_reduction(sources, (0, 4))
        assert center.critical_path_hops < corner.critical_path_hops
