"""Tests for NoC topologies (Fig. 3)."""

import pytest

from repro.noc import HierarchicalNoc, MeshNoc, NocParameters


class TestMesh:
    def test_manhattan_distance(self):
        mesh = MeshNoc(4, 4)
        assert mesh.hops((0, 0), (3, 3)) == 6
        assert mesh.hops((1, 2), (1, 2)) == 0
        assert mesh.hops((0, 3), (3, 0)) == 6

    def test_symmetric(self):
        mesh = MeshNoc(5, 5)
        assert mesh.hops((0, 1), (4, 2)) == mesh.hops((4, 2), (0, 1))

    def test_bounds_checked(self):
        mesh = MeshNoc(2, 2)
        with pytest.raises(ValueError, match="outside"):
            mesh.hops((0, 0), (2, 0))

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError, match="positive"):
            MeshNoc(0, 4)


class TestHierarchical:
    def test_same_tile_zero_hops(self):
        noc = HierarchicalNoc(4, 4)
        assert noc.hops((2, 2), (2, 2)) == 0

    def test_same_quad_two_hops(self):
        noc = HierarchicalNoc(4, 4)
        # (0,0) and (1,1) share the level-1 arbiter: up once, down once.
        assert noc.hops((0, 0), (1, 1)) == 2

    def test_opposite_corners_climb_the_tree(self):
        noc = HierarchicalNoc(4, 4)
        assert noc.hops((0, 0), (3, 3)) == 4

    def test_hierarchy_beats_mesh_for_far_corners(self):
        # Logarithmic vs linear diameter on a large grid.
        h = HierarchicalNoc(16, 16)
        m = MeshNoc(16, 16)
        assert h.hops((0, 0), (15, 15)) < m.hops((0, 0), (15, 15))


class TestRouteReduction:
    def test_transfer_report_accounting(self):
        mesh = MeshNoc(1, 4, NocParameters(hop_latency_s=1e-9))
        sources = [(0, c) for c in range(4)]
        report = mesh.route_reduction(sources, (0, 0))
        assert report.transfers == 4
        assert report.total_hops == 0 + 1 + 2 + 3
        assert report.critical_path_hops == 3
        assert report.latency_s == pytest.approx(3e-9)
        assert report.energy_j > 0

    def test_latency_follows_critical_path_not_sum(self):
        params = NocParameters(hop_latency_s=1e-9)
        mesh = MeshNoc(4, 4, params)
        sources = [(r, c) for r in range(4) for c in range(4)]
        report = mesh.route_reduction(sources, (0, 0))
        assert report.latency_s == pytest.approx(
            report.critical_path_hops * params.hop_latency_s
        )
        assert report.total_hops > report.critical_path_hops

    def test_empty_sources(self):
        mesh = MeshNoc(2, 2)
        report = mesh.route_reduction([], (0, 0))
        assert report.transfers == 0
        assert report.latency_s == 0.0
