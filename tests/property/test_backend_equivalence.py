"""Backend / batched-engine equivalence gates.

The batched analog engine's contract (DESIGN.md §17): with the numpy
backend, every member of an :class:`~repro.crossbar.opstack.
AnalogOperatorStack` behaves **bitwise** like a serial
:class:`~repro.crossbar.ops.AnalogMatrixOperator` with the same
settings and an identically seeded generator — read-outs, solves,
coefficient updates, write counters, and the RNG stream position
afterwards.  Accelerator backends (torch) are tolerance-equal at
1e-10 relative and are exercised only where installed.
"""

import numpy as np
import pytest

from repro.backend import (
    BACKEND_ENV,
    NumpyBackend,
    available_backends,
    get_backend,
    torch_available,
)
from repro.crossbar.ops import AnalogMatrixOperator
from repro.crossbar.opstack import AnalogOperatorStack
from repro.devices.variation import UniformVariation
from repro.exceptions import MappingError
from repro.reliability.verify import WriteVerifyPolicy

K = 5
N = 9


def make_pair(seed=0, variation=0.05, **kwargs):
    """A fleet of serial operators and the equivalent stack.

    Both arms get identically seeded per-member generators, so any
    behavioral divergence shows up as a draw-stream or bitwise
    mismatch.
    """
    gen = np.random.default_rng(seed)
    matrices = gen.uniform(0.05, 1.0, size=(K, N, N)) + 2.0 * np.eye(N)
    serial = [
        AnalogMatrixOperator(
            matrices[k],
            variation=UniformVariation(variation),
            rng=np.random.default_rng(1000 * seed + k),
            **kwargs,
        )
        for k in range(K)
    ]
    stack = AnalogOperatorStack(
        matrices,
        variation=UniformVariation(variation),
        rngs=[np.random.default_rng(1000 * seed + k) for k in range(K)],
        **kwargs,
    )
    return serial, stack, gen


def assert_reports_equal(serial, stack):
    for k, op in enumerate(serial):
        batched = stack.write_reports[k]
        assert batched == op.write_report, k


def assert_rng_lockstep(serial, stack):
    """Both arms' generators must sit at the same stream position."""
    for k, op in enumerate(serial):
        assert (
            op.array.rng.integers(0, 2**63)
            == stack.stack.rngs[k].integers(0, 2**63)
        ), k


class TestBackendSelection:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert isinstance(get_backend(), NumpyBackend)
        assert get_backend().name == "numpy"
        assert "numpy" in available_backends()

    def test_env_variable_selects(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        assert isinstance(get_backend(), NumpyBackend)

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "definitely-not-a-backend")
        assert isinstance(get_backend("numpy"), NumpyBackend)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("fortran")

    @pytest.mark.skipif(
        torch_available(), reason="torch installed; guard not reachable"
    )
    def test_torch_without_torch_raises_import_error(self):
        with pytest.raises(ImportError, match="torch"):
            get_backend("torch")


class TestNumpyStackBitwiseParity:
    def test_multiply_solve_bitwise(self):
        serial, stack, gen = make_pair(seed=1)
        for trial in range(3):
            x = gen.uniform(-1.0, 1.0, size=(K, N))
            batched = stack.multiply(x)
            for k, op in enumerate(serial):
                assert batched[k].tobytes() == op.multiply(x[k]).tobytes()
            b = gen.uniform(-1.0, 1.0, size=(K, N))
            solved = stack.solve(b)
            for k, op in enumerate(serial):
                assert solved[k].tobytes() == op.solve(b[k]).tobytes()
        assert_reports_equal(serial, stack)
        assert_rng_lockstep(serial, stack)

    def test_update_coefficients_bitwise(self):
        serial, stack, gen = make_pair(seed=2)
        rows = np.arange(N)
        cols = np.arange(N)
        for scale in (0.5, 0.9, 5.0):  # 5.0 outgrows the window: remap
            values = gen.uniform(0.1, 1.0, size=(K, N)) * scale
            stack.update_coefficients(
                rows, cols, values, floor_to_representable=True
            )
            for k, op in enumerate(serial):
                op.update_coefficients(
                    rows, cols, values[k], floor_to_representable=True
                )
            x = gen.uniform(-1.0, 1.0, size=(K, N))
            batched = stack.multiply(x)
            for k, op in enumerate(serial):
                assert batched[k].tobytes() == op.multiply(x[k]).tobytes()
                assert stack.scales[k] == op.scale
                assert stack.full_reprograms[k] == op.full_reprograms
        assert_reports_equal(serial, stack)
        assert_rng_lockstep(serial, stack)

    def test_redraw_and_renormalize_bitwise(self):
        serial, stack, gen = make_pair(seed=3)
        stack.redraw_variation()
        for op in serial:
            op.redraw_variation()
        stack.renormalize()
        for op in serial:
            op.renormalize()
        x = gen.uniform(-1.0, 1.0, size=(K, N))
        batched = stack.multiply(x)
        for k, op in enumerate(serial):
            assert batched[k].tobytes() == op.multiply(x[k]).tobytes()
        assert_reports_equal(serial, stack)
        assert_rng_lockstep(serial, stack)

    def test_write_verify_and_leak_modes_bitwise(self):
        for kwargs in (
            {"write_verify": WriteVerifyPolicy(0.02, 3)},
            {"off_state": "leak"},
            {"dac_bits": None, "adc_bits": None},
        ):
            serial, stack, gen = make_pair(seed=4, **kwargs)
            x = gen.uniform(-1.0, 1.0, size=(K, N))
            batched = stack.multiply(x)
            for k, op in enumerate(serial):
                assert batched[k].tobytes() == op.multiply(x[k]).tobytes()
            assert_reports_equal(serial, stack)
            assert_rng_lockstep(serial, stack)

    def test_member_subset_matches_full_fleet(self):
        serial, stack, gen = make_pair(seed=5)
        x = gen.uniform(-1.0, 1.0, size=(K, N))
        full = stack.multiply(x)
        members = np.array([0, 2, 4])
        subset = stack.multiply(x[members], members=members)
        assert subset.tobytes() == full[members].tobytes()
        b = gen.uniform(-1.0, 1.0, size=(K, N))
        solved_full, errors_full = stack.try_solve(b)
        solved, errors = stack.try_solve(b[members], members=members)
        assert errors == [None] * members.size and not any(errors_full)
        assert solved.tobytes() == solved_full[members].tobytes()

    def test_row_scaling_rejected(self):
        gen = np.random.default_rng(6)
        matrices = gen.uniform(0.1, 1.0, size=(2, 4, 4))
        with pytest.raises(MappingError, match="global mapping only"):
            AnalogOperatorStack(matrices, row_scaling=True)


@pytest.mark.skipif(not torch_available(), reason="torch not installed")
class TestTorchBackendTolerance:
    RTOL = 1e-10

    def test_matvec_and_solve_close_to_numpy(self):
        gen = np.random.default_rng(7)
        stack = gen.uniform(0.1, 1.0, size=(K, N, N)) + 2.0 * np.eye(N)
        v = gen.uniform(-1.0, 1.0, size=(K, N))
        numpy_backend = get_backend("numpy")
        torch_backend = get_backend("torch")
        np.testing.assert_allclose(
            torch_backend.matvec_t(stack, v),
            numpy_backend.matvec_t(stack, v),
            rtol=self.RTOL,
            atol=0.0,
        )
        np.testing.assert_allclose(
            torch_backend.solve_t(stack, v),
            numpy_backend.solve_t(stack, v),
            rtol=self.RTOL,
            atol=1e-12,
        )

    def test_stack_results_close_across_backends(self):
        _, stack_np, gen = make_pair(seed=8)
        matrices = np.random.default_rng(8).uniform(
            0.05, 1.0, size=(K, N, N)
        ) + 2.0 * np.eye(N)
        stack_torch = AnalogOperatorStack(
            matrices,
            variation=UniformVariation(0.05),
            rngs=[np.random.default_rng(8000 + k) for k in range(K)],
            backend="torch",
        )
        x = gen.uniform(-1.0, 1.0, size=(K, N))
        np.testing.assert_allclose(
            stack_torch.multiply(x),
            stack_np.multiply(x),
            rtol=1e-9,
            atol=1e-12,
        )
