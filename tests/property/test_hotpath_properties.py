"""Property tests for the differential (hot-path) update machinery.

The incremental paths must be *exact* rewrites of the from-scratch
paths — not approximately equal, bitwise equal — or the O(N)
optimization would silently change solver trajectories:

- :class:`~repro.core.newton.NewtonSystem` (in-place M/r assembly)
  versus :func:`~repro.core.newton.newton_matrix` /
  :func:`~repro.core.newton.newton_rhs`;
- :meth:`~repro.core.newton.AugmentedNewtonSystem.diagonal_update`
  applied to the initial matrix versus a full ``build_matrix``;
- differential cell programming (``skip_unchanged=True``) versus a
  full-grid reprogram;
- the dirty-column sum cache versus a fresh full-axis sum.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.newton import (
    AugmentedNewtonSystem,
    NewtonSystem,
    newton_matrix,
    newton_rhs,
)
from repro.crossbar.array import CrossbarArray, canonical_colsums
from repro.devices import YAKOPCIC_NAECON14
from repro.workloads import random_feasible_lp


def iterates(rng, n, m, count):
    """Random positive PDIP-like states (x, y, w, z)."""
    for _ in range(count):
        yield (
            rng.uniform(1e-6, 50.0, n),
            rng.uniform(1e-6, 50.0, m),
            rng.uniform(1e-6, 50.0, m),
            rng.uniform(1e-6, 50.0, n),
        )


class TestNewtonSystemIdentity:
    @given(seed=st.integers(0, 2**31 - 1), m=st.integers(4, 24))
    @settings(max_examples=40, deadline=None)
    def test_matrix_and_rhs_bitwise_match_from_scratch(self, seed, m):
        rng = np.random.default_rng(seed)
        problem = random_feasible_lp(m, rng=rng)
        n = problem.A.shape[1]
        system = NewtonSystem(problem)
        for x, y, w, z in iterates(rng, n, m, 4):
            mu = float(rng.uniform(1e-8, 10.0))
            assert np.array_equal(
                system.matrix(x, y, w, z),
                newton_matrix(problem, x, y, w, z),
            )
            assert np.array_equal(
                system.rhs(x, y, w, z, mu),
                newton_rhs(problem, x, y, w, z, mu),
            )

    def test_copy_detaches_from_workspace(self, rng):
        problem = random_feasible_lp(6, rng=rng)
        n, m = problem.A.shape[1], problem.A.shape[0]
        system = NewtonSystem(problem)
        (state,) = list(iterates(rng, n, m, 1))
        frozen = system.matrix(*state, copy=True)
        (other,) = list(iterates(rng, n, m, 1))
        system.matrix(*other)
        assert np.array_equal(frozen, newton_matrix(problem, *state))


class TestAugmentedDiagonalUpdateIdentity:
    @given(seed=st.integers(0, 2**31 - 1), m=st.integers(4, 18))
    @settings(max_examples=25, deadline=None)
    def test_diagonal_update_reaches_full_rebuild(self, seed, m):
        rng = np.random.default_rng(seed)
        problem = random_feasible_lp(m, rng=rng)
        n = problem.A.shape[1]
        system = AugmentedNewtonSystem(problem)
        x0 = np.full(n, 1.0)
        y0 = np.full(m, 1.0)
        matrix = system.build_matrix(x0, y0, y0.copy(), x0.copy())
        for x, y, w, z in iterates(rng, n, m, 3):
            rows, cols, values = system.diagonal_update(x, y, w, z)
            matrix[rows, cols] = values
            assert np.array_equal(
                matrix, system.build_matrix(x, y, w, z)
            )


class TestDifferentialProgrammingIdentity:
    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_diff_program_matches_full_reprogram(self, seed):
        rng = np.random.default_rng(seed)
        params = YAKOPCIC_NAECON14
        size = int(rng.integers(4, 16))
        lo, hi = params.g_off, params.g_on
        initial = rng.uniform(lo, hi, (size, size))
        final = initial.copy()
        # Move a random subset of cells; leave the rest untouched.
        moved = rng.random((size, size)) < 0.3
        final[moved] = rng.uniform(lo, hi, int(moved.sum()))

        diffed = CrossbarArray(size, size, params=params)
        diffed.program(initial)
        rows, cols = np.meshgrid(
            np.arange(size), np.arange(size), indexing="ij"
        )
        before = diffed.total_write_report.cells_written
        diffed.program_cells(
            rows.ravel(), cols.ravel(), final.ravel(), skip_unchanged=True
        )
        written = diffed.total_write_report.cells_written - before

        full = CrossbarArray(size, size, params=params)
        full.program(final)
        assert np.array_equal(
            diffed.nominal_conductances, full.nominal_conductances
        )
        # Without variation the physical state equals the target too.
        assert np.array_equal(
            diffed.actual_conductances, full.actual_conductances
        )
        # The skipped cells were never written.
        assert written <= int(moved.sum())

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_colsum_cache_bitwise_matches_full_sum(self, seed):
        # The cache (refreshed per dirty column) must stay bitwise
        # equal to the uncached canonical reduction over the full grid.
        rng = np.random.default_rng(seed)
        params = YAKOPCIC_NAECON14
        size = int(rng.integers(4, 16))
        array = CrossbarArray(size, size, params=params)
        array.program(rng.uniform(params.g_off, params.g_on, (size, size)))
        for _ in range(4):
            count = int(rng.integers(1, size))
            r = rng.integers(0, size, count)
            c = rng.integers(0, size, count)
            array.program_cells(
                r, c, rng.uniform(params.g_off, params.g_on, count)
            )
            expected = array.g_sense + canonical_colsums(
                array.nominal_conductances
            )
            assert np.array_equal(array.nominal_denominators(), expected)
