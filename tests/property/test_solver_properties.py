"""Property-based tests on solver-level invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import solve_simplex
from repro.core import SolveStatus, solve_reference
from repro.crossbar import AnalogMatrixOperator
from repro.devices import YAKOPCIC_NAECON14
from repro.workloads import random_feasible_lp


class TestLPScalingInvariance:
    @given(
        seed=st.integers(0, 2**31),
        factor=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=15, deadline=None)
    def test_objective_scales_linearly(self, seed, factor):
        problem = random_feasible_lp(
            9, rng=np.random.default_rng(seed)
        )
        base = solve_reference(problem)
        scaled = solve_reference(problem.scaled(factor))
        assert base.status is SolveStatus.OPTIMAL
        assert scaled.objective == pytest.approx(
            factor * base.objective, rel=1e-4, abs=1e-6
        )

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_simplex_and_pdip_agree(self, seed):
        problem = random_feasible_lp(
            9, rng=np.random.default_rng(seed)
        )
        simplex = solve_simplex(problem)
        pdip = solve_reference(problem)
        if simplex.status is SolveStatus.OPTIMAL and (
            pdip.status is SolveStatus.OPTIMAL
        ):
            assert simplex.objective == pytest.approx(
                pdip.objective, rel=1e-4, abs=1e-6
            )


class TestCrossbarLinearity:
    @given(
        seed=st.integers(0, 2**31),
        alpha=st.floats(
            min_value=-2.0, max_value=2.0, allow_subnormal=False
        ),
        beta=st.floats(
            min_value=-2.0, max_value=2.0, allow_subnormal=False
        ),
    )
    @settings(max_examples=20, deadline=None)
    def test_multiply_is_linear_without_quantization(
        self, seed, alpha, beta
    ):
        rng = np.random.default_rng(seed)
        matrix = rng.uniform(0.1, 1.0, size=(5, 5))
        operator = AnalogMatrixOperator(
            matrix,
            params=YAKOPCIC_NAECON14,
            rng=rng,
            dac_bits=None,
            adc_bits=None,
        )
        u = rng.uniform(-1, 1, size=5)
        v = rng.uniform(-1, 1, size=5)
        combined = operator.multiply(alpha * u + beta * v)
        separate = alpha * operator.multiply(u) + beta * (
            operator.multiply(v)
        )
        np.testing.assert_allclose(
            combined, separate, rtol=1e-9, atol=1e-12
        )

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_solve_inverts_multiply(self, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.uniform(0.1, 1.0, size=(5, 5)) + 2 * np.eye(5)
        operator = AnalogMatrixOperator(
            matrix,
            params=YAKOPCIC_NAECON14,
            rng=rng,
            dac_bits=None,
            adc_bits=None,
        )
        b = rng.uniform(-1, 1, size=5)
        x = operator.solve(b)
        np.testing.assert_allclose(
            operator.multiply(x), b, rtol=1e-8, atol=1e-10
        )
