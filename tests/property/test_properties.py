"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import LinearProgram, eliminate_negatives
from repro.core.stepsize import ratio_test_theta
from repro.crossbar import map_matrix, quantize_auto
from repro.crossbar.mapping import map_matrix_per_row
from repro.devices import YAKOPCIC_NAECON14
from repro.noc import BlockPartition

finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False,
    allow_infinity=False,
)
positive_floats = st.floats(
    min_value=1e-3, max_value=100.0, allow_nan=False,
    allow_infinity=False,
)


def square_matrices(min_side=2, max_side=6, elements=finite_floats):
    return st.integers(min_side, max_side).flatmap(
        lambda n: hnp.arrays(
            np.float64, (n, n), elements=elements
        )
    )


class TestNegativeElimination:
    @given(matrix=square_matrices())
    @settings(max_examples=50, deadline=None)
    def test_augmented_matrix_always_non_negative(self, matrix):
        record = eliminate_negatives(matrix)
        assert record.matrix.min() >= 0.0

    @given(matrix=square_matrices())
    @settings(max_examples=50, deadline=None)
    def test_product_identity_holds_for_any_state(self, matrix):
        n = matrix.shape[0]
        state = np.linspace(-1.0, 1.0, n)
        record = eliminate_negatives(matrix)
        product = record.matrix @ record.augment_state(state)
        np.testing.assert_allclose(
            product[:n], matrix @ state, rtol=1e-9, atol=1e-9
        )
        np.testing.assert_allclose(
            product[n:], 0.0, atol=1e-9
        )

    @given(matrix=square_matrices(elements=st.floats(
        min_value=-10, max_value=10, allow_nan=False,
        allow_infinity=False)))
    @settings(max_examples=50, deadline=None)
    def test_solution_equivalence_when_nonsingular(self, matrix):
        n = matrix.shape[0]
        matrix = matrix + (np.abs(matrix).sum() + n) * np.eye(n)
        rhs = np.arange(1.0, n + 1)
        reference = np.linalg.solve(matrix, rhs)
        record = eliminate_negatives(matrix)
        augmented = np.linalg.solve(
            record.matrix, record.augment_rhs(rhs)
        )
        np.testing.assert_allclose(
            record.extract(augmented), reference, rtol=1e-6, atol=1e-8
        )


class TestQuantization:
    @given(
        values=hnp.arrays(
            np.float64,
            st.integers(1, 30),
            elements=st.floats(
                min_value=-1e6, max_value=1e6, allow_nan=False,
                allow_infinity=False,
            ),
        ),
        bits=st.integers(2, 12),
    )
    @settings(max_examples=60, deadline=None)
    def test_entry_mode_relative_error_bound(self, values, bits):
        out = quantize_auto(values, bits, "entry")
        nonzero = values != 0.0
        if np.any(nonzero):
            rel = np.abs(
                out[nonzero] / values[nonzero] - 1.0
            )
            assert np.max(rel) <= 2.0**-bits + 1e-12
        assert np.all(out[~nonzero] == 0.0)

    @given(
        values=hnp.arrays(
            np.float64,
            st.integers(1, 30),
            elements=finite_floats,
        ),
        bits=st.integers(2, 12),
    )
    @settings(max_examples=60, deadline=None)
    def test_vector_mode_error_bounded_by_step(self, values, bits):
        out = quantize_auto(values, bits, "vector")
        peak = float(np.max(np.abs(values)))
        if peak < 1e-300:
            # Subnormal peaks are treated as zero drive: the converter
            # step would underflow, so the whole vector quantizes to 0.
            assert np.all(out == 0.0)
        else:
            step = 2.0 * peak / 2**bits
            assert np.max(np.abs(out - values)) <= step * (1 + 1e-9)

    @given(
        values=hnp.arrays(
            np.float64, st.integers(1, 20), elements=finite_floats
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_quantization_idempotent(self, values):
        once = quantize_auto(values, 8, "entry")
        np.testing.assert_array_equal(
            quantize_auto(once, 8, "entry"), once
        )


class TestMapping:
    @given(
        matrix=st.integers(1, 5).flatmap(
            lambda m: st.integers(1, 5).flatmap(
                lambda n: hnp.arrays(
                    np.float64, (m, n), elements=positive_floats
                )
            )
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_fast_mapping_roundtrip(self, matrix):
        mapping = map_matrix(matrix, YAKOPCIC_NAECON14)
        decoded = mapping.decode_matrix()
        representable = ~mapping.floored.T
        np.testing.assert_allclose(
            decoded[representable], matrix[representable], rtol=1e-9
        )

    @given(
        matrix=st.integers(1, 5).flatmap(
            lambda m: st.integers(1, 5).flatmap(
                lambda n: hnp.arrays(
                    np.float64,
                    (m, n),
                    elements=st.floats(
                        min_value=1e-6,
                        max_value=1e6,
                        allow_nan=False,
                        allow_infinity=False,
                    ),
                )
            )
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_per_row_mapping_roundtrip_any_row_scale(self, matrix):
        mapping = map_matrix_per_row(matrix, YAKOPCIC_NAECON14)
        decoded = mapping.decode_matrix()
        representable = ~mapping.floored.T
        np.testing.assert_allclose(
            decoded[representable], matrix[representable], rtol=1e-9
        )

    @given(
        matrix=square_matrices(elements=positive_floats)
    )
    @settings(max_examples=40, deadline=None)
    def test_conductances_within_device_window(self, matrix):
        mapping = map_matrix(matrix, YAKOPCIC_NAECON14)
        g = mapping.conductances
        on_cells = g > 0
        assert np.all(
            g[on_cells] <= YAKOPCIC_NAECON14.g_on * (1 + 1e-12)
        )


class TestRatioTest:
    @given(
        state=hnp.arrays(
            np.float64, st.integers(1, 20), elements=positive_floats
        ),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_positivity_preserved(self, state, seed):
        step = np.random.default_rng(seed).normal(size=state.shape)
        theta = ratio_test_theta(state, step, step_scale=0.95)
        assert 0.0 < theta <= 0.95
        assert np.all(state + theta * step > 0)


class TestPartition:
    @given(
        n_out=st.integers(1, 40),
        n_in=st.integers(1, 40),
        tile=st.integers(1, 17),
    )
    @settings(max_examples=60, deadline=None)
    def test_blocks_cover_exactly(self, n_out, n_in, tile):
        part = BlockPartition(n_out, n_in, tile)
        covered = np.zeros((n_out, n_in), dtype=int)
        for r, c in part.tiles():
            covered[part.row_slice(r), part.col_slice(c)] += 1
        assert np.all(covered == 1)


class TestLinearProgram:
    @given(
        m=st.integers(1, 6),
        n=st.integers(1, 6),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_dual_of_dual_is_identity(self, m, n, seed):
        rng = np.random.default_rng(seed)
        problem = LinearProgram(
            c=rng.normal(size=n),
            A=rng.normal(size=(m, n)),
            b=rng.normal(size=m),
        )
        double = problem.dual().dual()
        np.testing.assert_allclose(double.c, problem.c)
        np.testing.assert_allclose(double.A, problem.A)
        np.testing.assert_allclose(double.b, problem.b)
