"""Tests for routing LPs."""

import networkx as nx
import numpy as np
import pytest

from repro.baselines import solve_scipy
from repro.core import SolveStatus
from repro.workloads import (
    flow_value,
    max_flow_lp,
    multicommodity_routing_lp,
    random_routing_network,
)


@pytest.fixture
def diamond():
    """s -> {a, b} -> t with known max flow 15."""
    g = nx.DiGraph()
    g.add_edge("s", "a", capacity=10.0)
    g.add_edge("s", "b", capacity=5.0)
    g.add_edge("a", "t", capacity=10.0)
    g.add_edge("b", "t", capacity=10.0)
    return g


class TestMaxFlow:
    def test_known_value(self, diamond):
        problem, edges = max_flow_lp(diamond, "s", "t")
        result = solve_scipy(problem)
        assert result.status is SolveStatus.OPTIMAL
        assert flow_value(result.x, edges, diamond, "s") == (
            pytest.approx(15.0)
        )

    def test_matches_networkx_on_random_graphs(self, rng):
        for seed in range(3):
            graph = random_routing_network(
                6, rng=np.random.default_rng(seed)
            )
            # Zero slack: the LP must reproduce the combinatorial
            # max-flow value exactly.
            problem, edges = max_flow_lp(
                graph, 0, 5, conservation_slack=0.0
            )
            result = solve_scipy(problem)
            reference = nx.maximum_flow_value(graph, 0, 5)
            assert flow_value(result.x, edges, graph, 0) == (
                pytest.approx(reference, rel=1e-6)
            )

    def test_slack_bounds_value_inflation(self, rng):
        graph = random_routing_network(6, rng=np.random.default_rng(1))
        exact = nx.maximum_flow_value(graph, 0, 5)
        problem, edges = max_flow_lp(
            graph, 0, 5, conservation_slack=0.05
        )
        result = solve_scipy(problem)
        value = flow_value(result.x, edges, graph, 0)
        internal = graph.number_of_nodes() - 2
        assert value <= exact + 0.05 * internal + 1e-9
        assert value >= exact - 1e-9

    def test_flow_conservation_within_slack(self, diamond):
        problem, edges = max_flow_lp(
            diamond, "s", "t", conservation_slack=0.05
        )
        result = solve_scipy(problem)
        inflow = result.x[edges[("s", "a")]]
        outflow = result.x[edges[("a", "t")]]
        assert abs(inflow - outflow) <= 0.05 + 1e-9

    def test_exact_conservation_with_zero_slack(self, diamond):
        problem, edges = max_flow_lp(
            diamond, "s", "t", conservation_slack=0.0
        )
        result = solve_scipy(problem)
        inflow = result.x[edges[("s", "a")]]
        outflow = result.x[edges[("a", "t")]]
        assert inflow == pytest.approx(outflow, abs=1e-8)

    def test_validation(self, diamond):
        with pytest.raises(ValueError, match="nodes"):
            max_flow_lp(diamond, "s", "zzz")
        with pytest.raises(ValueError, match="differ"):
            max_flow_lp(diamond, "s", "s")

    def test_missing_capacity_rejected(self):
        g = nx.DiGraph()
        g.add_edge(0, 1)
        with pytest.raises(ValueError, match="capacity"):
            max_flow_lp(g, 0, 1)


class TestMulticommodity:
    def test_single_commodity_reduces_to_max_flow(self, diamond):
        single, _ = multicommodity_routing_lp(
            diamond, [("s", "t", 1.0)]
        )
        result = solve_scipy(single)
        assert result.objective == pytest.approx(15.0)

    def test_capacity_shared_between_commodities(self, diamond):
        problem, var = multicommodity_routing_lp(
            diamond, [("s", "t", 1.0), ("s", "t", 1.0)]
        )
        result = solve_scipy(problem)
        # Two identical commodities share the same 15 units.
        assert result.objective == pytest.approx(15.0)

    def test_weights_bias_allocation(self, diamond):
        problem, var = multicommodity_routing_lp(
            diamond, [("s", "t", 3.0), ("s", "t", 1.0)]
        )
        result = solve_scipy(problem)
        assert result.objective == pytest.approx(45.0)

    def test_validation(self, diamond):
        with pytest.raises(ValueError, match="demand"):
            multicommodity_routing_lp(diamond, [])


class TestRandomNetwork:
    def test_backbone_guarantees_connectivity(self, rng):
        graph = random_routing_network(8, rng=rng)
        assert nx.has_path(graph, 0, 7)

    def test_capacities_in_range(self, rng):
        graph = random_routing_network(
            6, rng=rng, capacity_range=(2.0, 3.0)
        )
        caps = [d["capacity"] for _, _, d in graph.edges(data=True)]
        assert min(caps) >= 2.0
        assert max(caps) <= 3.0

    def test_minimum_size(self, rng):
        with pytest.raises(ValueError, match="two nodes"):
            random_routing_network(1, rng=rng)
