"""Tests for scheduling LPs."""

import numpy as np
import pytest

from repro.baselines import solve_scipy
from repro.core import SolveStatus
from repro.workloads import machine_scheduling_lp, production_planning_lp


class TestProductionPlanning:
    def test_solvable_and_bounded(self, rng):
        problem = production_planning_lp(6, 4, rng=rng)
        result = solve_scipy(problem)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective > 0

    def test_shape(self, rng):
        problem = production_planning_lp(6, 4, rng=rng)
        assert problem.n_variables == 6
        assert problem.n_constraints == 4 + 6  # resources + demand caps

    def test_demand_caps_respected(self, rng):
        problem = production_planning_lp(5, 3, rng=rng)
        result = solve_scipy(problem)
        demand_caps = problem.b[3:]
        assert np.all(result.x <= demand_caps + 1e-8)

    def test_resource_constraints_respected(self, rng):
        problem = production_planning_lp(5, 3, rng=rng)
        result = solve_scipy(problem)
        usage = problem.A[:3]
        assert np.all(usage @ result.x <= problem.b[:3] + 1e-8)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            production_planning_lp(0, 3, rng=rng)


class TestMachineScheduling:
    def test_solvable(self, rng):
        problem, times = machine_scheduling_lp(5, 3, rng=rng)
        result = solve_scipy(problem)
        assert result.status is SolveStatus.OPTIMAL
        assert times.shape == (5, 3)

    def test_jobs_not_overcompleted(self, rng):
        problem, _ = machine_scheduling_lp(5, 3, rng=rng)
        result = solve_scipy(problem)
        fractions = result.x.reshape(5, 3)
        assert np.all(fractions.sum(axis=1) <= 1.0 + 1e-8)

    def test_machine_budgets_respected(self, rng):
        horizon = 6.0
        problem, times = machine_scheduling_lp(
            5, 3, rng=rng, horizon=horizon
        )
        result = solve_scipy(problem)
        fractions = result.x.reshape(5, 3)
        busy = (fractions * times).sum(axis=0)
        assert np.all(busy <= horizon + 1e-8)

    def test_generous_horizon_completes_everything(self, rng):
        problem, _ = machine_scheduling_lp(
            4, 3, rng=rng, horizon=1000.0
        )
        result = solve_scipy(problem)
        fractions = result.x.reshape(4, 3)
        np.testing.assert_allclose(
            fractions.sum(axis=1), np.ones(4), atol=1e-6
        )

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="horizon"):
            machine_scheduling_lp(3, 2, rng=rng, horizon=0.0)
        with pytest.raises(ValueError):
            machine_scheduling_lp(0, 2, rng=rng)
