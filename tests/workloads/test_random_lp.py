"""Tests for the random LP generators (paper Section 4.2)."""

import numpy as np
import pytest

from repro.baselines import solve_scipy
from repro.core import SolveStatus
from repro.workloads import (
    paper_sizes,
    paper_test_suite,
    random_feasible_lp,
    random_infeasible_lp,
    variables_for_constraints,
)


class TestPaperGrid:
    def test_sizes_double_from_4(self):
        assert paper_sizes(1024) == [4, 8, 16, 32, 64, 128, 256, 512,
                                     1024]

    def test_sizes_respect_cap(self):
        assert paper_sizes(64)[-1] == 64

    def test_variable_rule_is_one_third(self):
        assert variables_for_constraints(1024) == 341
        assert variables_for_constraints(4) == 1
        assert variables_for_constraints(3) == 1  # floor at 1


class TestFeasibleGenerator:
    def test_generated_problems_are_feasible_and_bounded(self, rng):
        for _ in range(6):
            problem = random_feasible_lp(12, rng=rng)
            result = solve_scipy(problem)
            assert result.status is SolveStatus.OPTIMAL

    def test_shape_follows_paper_rule(self, rng):
        problem = random_feasible_lp(30, rng=rng)
        assert problem.n_constraints == 30
        assert problem.n_variables == 10

    def test_explicit_variable_count(self, rng):
        problem = random_feasible_lp(10, 7, rng=rng)
        assert problem.n_variables == 7

    def test_interior_point_planted(self, rng):
        # b = A x0 + slack guarantees a strictly feasible point exists.
        problem = random_feasible_lp(15, rng=rng)
        result = solve_scipy(problem)
        assert problem.is_feasible(result.x, tolerance=1e-6)

    def test_deterministic_given_seed(self):
        a = random_feasible_lp(10, rng=np.random.default_rng(5))
        b = random_feasible_lp(10, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a.A, b.A)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            random_feasible_lp(1, rng=rng)
        with pytest.raises(ValueError):
            random_feasible_lp(10, 0, rng=rng)


class TestInfeasibleGenerator:
    def test_generated_problems_are_infeasible(self, rng):
        for _ in range(6):
            problem = random_infeasible_lp(12, rng=rng)
            result = solve_scipy(problem)
            assert result.status is SolveStatus.INFEASIBLE

    def test_contradiction_is_planted_in_last_rows(self, rng):
        problem = random_infeasible_lp(12, rng=rng)
        np.testing.assert_allclose(
            problem.A[-2, :], -problem.A[-1, :]
        )
        # b[-2] < -(b[-1]) certifies emptiness of the pair.
        assert problem.b[-2] < -problem.b[-1]

    def test_margin_scales_with_size(self, rng):
        small = random_infeasible_lp(12, rng=np.random.default_rng(1))
        large = random_infeasible_lp(192, rng=np.random.default_rng(1))
        margin_small = -(small.b[-1] + small.b[-2])
        margin_large = -(large.b[-1] + large.b[-2])
        assert margin_large > margin_small

    def test_minimum_size(self, rng):
        with pytest.raises(ValueError, match="at least 3"):
            random_infeasible_lp(2, rng=rng)


class TestSuiteBuilder:
    def test_counts(self, rng):
        feasible, infeasible = paper_test_suite(
            8, rng=rng, n_feasible=3, n_infeasible=2
        )
        assert len(feasible) == 3
        assert len(infeasible) == 2
        assert all("feasible" in p.name for p in feasible)
