"""Tests for transportation LPs."""

import numpy as np
import pytest

from repro.baselines import solve_scipy
from repro.core import SolveStatus, solve_crossbar
from repro.workloads import (
    random_transportation_lp,
    shipping_cost,
    transportation_lp,
)


@pytest.fixture
def two_by_two():
    """Hand-checked instance: optimum ships on the cheap diagonal."""
    supply = np.array([3.0, 3.0])
    demand = np.array([2.0, 2.0])
    cost = np.array([[1.0, 5.0], [5.0, 1.0]])
    return transportation_lp(supply, demand, cost), cost


class TestTransportation:
    def test_known_optimum(self, two_by_two):
        (problem, shape), cost = two_by_two
        result = solve_scipy(problem)
        assert result.status is SolveStatus.OPTIMAL
        # Ship 2 units on each diagonal at cost 1: total cost 4.
        assert -result.objective == pytest.approx(4.0, abs=1e-6)
        assert shipping_cost(result.x, cost) == pytest.approx(
            4.0, abs=1e-6
        )

    def test_demand_satisfied(self, two_by_two):
        (problem, shape), _ = two_by_two
        result = solve_scipy(problem)
        plan = result.x.reshape(shape)
        np.testing.assert_array_less(
            np.array([2.0, 2.0]) - 1e-8, plan.sum(axis=0) + 1e-12
        )

    def test_supply_respected(self, two_by_two):
        (problem, shape), _ = two_by_two
        result = solve_scipy(problem)
        plan = result.x.reshape(shape)
        assert np.all(plan.sum(axis=1) <= 3.0 + 1e-8)

    def test_random_instances_feasible(self, rng):
        for _ in range(4):
            (problem, _), = (random_transportation_lp(4, 5, rng=rng),)
            result = solve_scipy(problem)
            assert result.status is SolveStatus.OPTIMAL

    def test_crossbar_solves_transportation(self, rng):
        problem, shape = random_transportation_lp(3, 4, rng=rng)
        truth = solve_scipy(problem)
        result = solve_crossbar(problem, rng=np.random.default_rng(0))
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(
            truth.objective, rel=0.08, abs=0.3
        )

    def test_overdemand_infeasible(self):
        problem, _ = transportation_lp(
            supply=np.array([1.0]),
            demand=np.array([5.0]),
            cost=np.array([[1.0]]),
        )
        assert solve_scipy(problem).status is SolveStatus.INFEASIBLE

    def test_validation(self):
        with pytest.raises(ValueError, match="shape"):
            transportation_lp(
                np.ones(2), np.ones(2), np.ones((3, 2))
            )
        with pytest.raises(ValueError, match="non-negative"):
            transportation_lp(
                np.ones(1), np.ones(1), -np.ones((1, 1))
            )
        with pytest.raises(ValueError, match="1-D"):
            transportation_lp(
                np.ones((1, 1)), np.ones(1), np.ones((1, 1))
            )
