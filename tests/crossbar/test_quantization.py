"""Tests for DAC/ADC quantization."""

import numpy as np
import pytest

from repro.crossbar import IdealConverter, Quantizer, quantize_auto


class TestQuantizer:
    def test_rounds_to_grid(self):
        q = Quantizer(bits=8, full_scale=1.0)
        values = np.array([0.0, 0.1, -0.1, 0.5])
        out = q.quantize(values)
        np.testing.assert_allclose(out, values, atol=q.max_error)

    def test_codes_are_integers_in_range(self):
        q = Quantizer(bits=8, full_scale=1.0)
        codes = q.codes(np.linspace(-2, 2, 101))
        assert codes.dtype == np.int64
        assert codes.min() >= -128
        assert codes.max() <= 127

    def test_saturates_out_of_range(self):
        q = Quantizer(bits=8, full_scale=1.0)
        out = q.quantize(np.array([5.0, -5.0]))
        assert out[0] == pytest.approx(127 * q.step)
        assert out[1] == pytest.approx(-128 * q.step)

    def test_max_error_is_half_step(self):
        q = Quantizer(bits=4, full_scale=2.0)
        assert q.max_error == pytest.approx(q.step / 2)

    def test_more_bits_less_error(self):
        coarse = Quantizer(bits=4, full_scale=1.0)
        fine = Quantizer(bits=12, full_scale=1.0)
        assert fine.max_error < coarse.max_error

    @pytest.mark.parametrize("bits,scale", [(0, 1.0), (8, 0.0), (8, -1.0)])
    def test_validation(self, bits, scale):
        with pytest.raises(ValueError):
            Quantizer(bits=bits, full_scale=scale)

    def test_callable(self):
        q = Quantizer(bits=8, full_scale=1.0)
        v = np.array([0.3])
        np.testing.assert_array_equal(q(v), q.quantize(v))


class TestQuantizeAuto:
    def test_none_bits_is_identity(self, rng):
        values = rng.normal(size=17)
        np.testing.assert_array_equal(
            quantize_auto(values, None), values
        )

    def test_entry_mode_relative_error_bound(self, rng):
        # Per-entry mode: every value keeps 8 bits of relative precision
        # regardless of the vector's dynamic range.
        values = rng.normal(size=50) * np.logspace(-8, 4, 50)
        out = quantize_auto(values, 8, "entry")
        rel = np.abs(out / values - 1.0)
        assert np.max(rel) <= 2.0**-8

    def test_vector_mode_error_relative_to_peak(self, rng):
        values = rng.uniform(-3, 3, size=40)
        out = quantize_auto(values, 8, "vector")
        peak = np.abs(values).max()
        # One quantizer step of a grid referenced to the peak (values at
        # +full-scale saturate to the top code, one step below).
        step = 2.0 * peak / 2**8
        assert np.max(np.abs(out - values)) <= step * (1 + 1e-9)

    def test_vector_mode_flushes_tiny_entries(self):
        values = np.array([1.0, 1e-9])
        out = quantize_auto(values, 8, "vector")
        assert out[1] == 0.0

    def test_entry_mode_preserves_tiny_entries(self):
        values = np.array([1.0, 1e-9])
        out = quantize_auto(values, 8, "entry")
        assert out[1] == pytest.approx(1e-9, rel=2.0**-8)

    def test_zero_vector(self):
        out = quantize_auto(np.zeros(5), 8, "vector")
        np.testing.assert_array_equal(out, np.zeros(5))
        out = quantize_auto(np.zeros(5), 8, "entry")
        np.testing.assert_array_equal(out, np.zeros(5))

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            quantize_auto(np.ones(3), 8, "bogus")

    def test_idempotent(self, rng):
        values = rng.normal(size=20)
        once = quantize_auto(values, 8, "entry")
        twice = quantize_auto(once, 8, "entry")
        np.testing.assert_array_equal(once, twice)


class TestIdealConverter:
    def test_passthrough_copy(self, rng):
        values = rng.normal(size=9)
        converter = IdealConverter()
        out = converter.quantize(values)
        np.testing.assert_array_equal(out, values)
        out[0] = 99.0
        assert values[0] != 99.0
