"""Tests for matrix -> conductance mapping."""

import numpy as np
import pytest

from repro.crossbar import map_matrix, shared_scale
from repro.crossbar.mapping import map_matrix_per_row
from repro.devices import HP_TIO2, YAKOPCIC_NAECON14
from repro.exceptions import MappingError


class TestMapMatrix:
    def test_fast_mapping_scale(self, rng):
        matrix = rng.uniform(0.1, 3.0, size=(4, 6))
        mapping = map_matrix(matrix, HP_TIO2)
        assert mapping.scale == pytest.approx(HP_TIO2.g_on / matrix.max())
        assert mapping.conductances.shape == (6, 4)

    def test_transpose_orientation(self, rng):
        matrix = rng.uniform(0.5, 1.0, size=(3, 5))
        mapping = map_matrix(matrix, HP_TIO2)
        np.testing.assert_allclose(
            mapping.conductances.T, mapping.scale * matrix
        )

    def test_decode_roundtrip(self, rng):
        matrix = rng.uniform(0.5, 2.0, size=(5, 5))
        mapping = map_matrix(matrix, YAKOPCIC_NAECON14)
        np.testing.assert_allclose(mapping.decode_matrix(), matrix)

    def test_zero_off_state_truncates(self):
        matrix = np.array([[1.0, 1e-9]])
        mapping = map_matrix(matrix, HP_TIO2, off_state="zero")
        assert mapping.conductances[1, 0] == 0.0
        assert mapping.floored[1, 0]

    def test_leak_off_state_clamps_up(self):
        matrix = np.array([[1.0, 1e-9]])
        mapping = map_matrix(matrix, HP_TIO2, off_state="leak")
        assert mapping.conductances[1, 0] == pytest.approx(HP_TIO2.g_off)
        assert mapping.floor == HP_TIO2.g_off

    def test_explicit_scale(self, rng):
        matrix = rng.uniform(0.1, 1.0, size=(3, 3))
        scale = HP_TIO2.g_on / 10.0
        mapping = map_matrix(matrix, HP_TIO2, scale=scale)
        assert mapping.scale == scale

    def test_scale_overflow_rejected(self):
        matrix = np.array([[2.0]])
        with pytest.raises(MappingError, match="above"):
            map_matrix(matrix, HP_TIO2, scale=HP_TIO2.g_on)

    def test_all_zero_matrix(self):
        mapping = map_matrix(np.zeros((3, 3)), HP_TIO2)
        assert np.all(mapping.conductances == 0.0)

    def test_rejects_negative(self):
        with pytest.raises(MappingError, match="negative"):
            map_matrix(np.array([[-1.0]]), HP_TIO2)

    def test_rejects_nan(self):
        with pytest.raises(MappingError, match="finite"):
            map_matrix(np.array([[np.nan]]), HP_TIO2)

    def test_rejects_empty_and_1d(self):
        with pytest.raises(MappingError):
            map_matrix(np.empty((0, 3)), HP_TIO2)
        with pytest.raises(MappingError):
            map_matrix(np.ones(4), HP_TIO2)

    def test_rejects_unknown_off_state(self):
        with pytest.raises(MappingError, match="off_state"):
            map_matrix(np.ones((2, 2)), HP_TIO2, off_state="weird")

    def test_global_mapping_not_per_row(self, rng):
        mapping = map_matrix(rng.uniform(0, 1, (3, 3)), HP_TIO2)
        assert not mapping.per_row
        assert mapping.scale_vector.shape == (3,)


class TestMapMatrixPerRow:
    def test_each_row_uses_own_scale(self):
        matrix = np.array([[1.0, 0.5], [100.0, 50.0]])
        mapping = map_matrix_per_row(matrix, YAKOPCIC_NAECON14)
        assert mapping.per_row
        scales = mapping.scale_vector
        assert scales[0] == pytest.approx(YAKOPCIC_NAECON14.g_on / 1.0)
        assert scales[1] == pytest.approx(YAKOPCIC_NAECON14.g_on / 100.0)

    def test_decode_roundtrip_wide_dynamic_range(self):
        # A global mapping would truncate the small row entirely.
        matrix = np.array([[1e-4, 5e-5], [1e3, 5e2]])
        mapping = map_matrix_per_row(matrix, YAKOPCIC_NAECON14)
        np.testing.assert_allclose(mapping.decode_matrix(), matrix)

    def test_headroom_lowers_scales(self, rng):
        matrix = rng.uniform(0.5, 1.0, size=(4, 4))
        tight = map_matrix_per_row(matrix, HP_TIO2, headroom=1.0)
        loose = map_matrix_per_row(matrix, HP_TIO2, headroom=4.0)
        assert np.all(loose.scale_vector < tight.scale_vector)

    def test_zero_row_handled(self):
        matrix = np.array([[0.0, 0.0], [1.0, 2.0]])
        mapping = map_matrix_per_row(matrix, HP_TIO2)
        np.testing.assert_array_equal(mapping.conductances[:, 0], 0.0)

    def test_rejects_negative(self):
        with pytest.raises(MappingError, match="negative"):
            map_matrix_per_row(np.array([[-1.0]]), HP_TIO2)

    def test_rejects_bad_headroom(self):
        with pytest.raises(MappingError, match="headroom"):
            map_matrix_per_row(np.ones((2, 2)), HP_TIO2, headroom=0.5)


class TestSharedScale:
    def test_scale_spans_all_matrices(self, rng):
        blocks = [rng.uniform(0, peak, size=(3, 3)) for peak in (1, 5, 2)]
        scale = shared_scale(blocks, HP_TIO2)
        overall_max = max(float(b.max()) for b in blocks)
        assert scale == pytest.approx(HP_TIO2.g_on / overall_max)

    def test_usable_by_map_matrix(self, rng):
        blocks = [rng.uniform(0, 4, size=(3, 3)) for _ in range(3)]
        scale = shared_scale(blocks, HP_TIO2)
        for block in blocks:
            mapping = map_matrix(block, HP_TIO2, scale=scale)
            assert mapping.conductances.max() <= HP_TIO2.g_on * (1 + 1e-12)

    def test_rejects_empty_list(self):
        with pytest.raises(MappingError):
            shared_scale([], HP_TIO2)

    def test_all_zero_blocks(self):
        scale = shared_scale([np.zeros((2, 2))], HP_TIO2)
        assert scale == pytest.approx(HP_TIO2.g_on)
