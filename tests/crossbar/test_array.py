"""Tests for the crossbar array simulator."""

import numpy as np
import pytest

from repro.crossbar import CrossbarArray, map_matrix
from repro.devices import HP_TIO2, YAKOPCIC_NAECON14, UniformVariation
from repro.exceptions import CrossbarSolveError, MappingError


def programmed_array(rng, n=6, variation=None, params=YAKOPCIC_NAECON14):
    matrix = rng.uniform(0.2, 1.0, size=(n, n))
    mapping = map_matrix(matrix, params)
    array = CrossbarArray(
        n, n, params=params, variation=variation, rng=rng
    )
    array.program_mapping(mapping)
    return array, matrix, mapping


class TestConstruction:
    def test_blank_array_is_off(self):
        array = CrossbarArray(3, 4)
        assert np.all(array.nominal_conductances == 0.0)
        assert array.actual_conductances.shape == (3, 4)

    @pytest.mark.parametrize("rows,cols", [(0, 3), (3, 0), (-1, 2)])
    def test_rejects_bad_dimensions(self, rows, cols):
        with pytest.raises(ValueError):
            CrossbarArray(rows, cols)

    def test_rejects_bad_g_sense(self):
        with pytest.raises(ValueError, match="g_sense"):
            CrossbarArray(2, 2, g_sense=-1.0)


class TestProgramming:
    def test_program_validates_range(self):
        array = CrossbarArray(2, 2, params=HP_TIO2)
        with pytest.raises(MappingError, match="negative"):
            array.program(np.full((2, 2), -1.0))
        with pytest.raises(MappingError, match="above"):
            array.program(np.full((2, 2), HP_TIO2.g_on * 2))
        with pytest.raises(MappingError, match="finite"):
            array.program(np.full((2, 2), np.nan))

    def test_program_shape_checked(self):
        array = CrossbarArray(2, 3)
        with pytest.raises(MappingError, match="shape"):
            array.program(np.zeros((3, 2)))

    def test_program_cells_updates_selectively(self, rng):
        array, _, mapping = programmed_array(rng)
        before = array.nominal_conductances
        rows = np.array([0, 1])
        cols = np.array([2, 3])
        targets = np.full(2, YAKOPCIC_NAECON14.g_on * 0.5)
        array.program_cells(rows, cols, targets)
        after = array.nominal_conductances
        assert after[0, 2] == pytest.approx(targets[0])
        untouched = np.ones_like(before, dtype=bool)
        untouched[rows, cols] = False
        np.testing.assert_array_equal(after[untouched], before[untouched])

    def test_program_cells_redraws_variation_only_for_written(self, rng):
        array, _, mapping = programmed_array(
            rng, variation=UniformVariation(0.1)
        )
        before_actual = array.actual_conductances
        array.program_cells(
            np.array([0]), np.array([0]),
            np.array([YAKOPCIC_NAECON14.g_on * 0.3]),
        )
        after_actual = array.actual_conductances
        # Unwritten cells keep their physical deviation.
        mask = np.ones_like(before_actual, dtype=bool)
        mask[0, 0] = False
        np.testing.assert_array_equal(
            after_actual[mask], before_actual[mask]
        )

    def test_program_cells_index_bounds(self, rng):
        array, _, _ = programmed_array(rng, n=4)
        with pytest.raises(IndexError):
            array.program_cells(
                np.array([9]), np.array([0]), np.array([0.0])
            )

    def test_empty_cell_update_is_free(self, rng):
        array, _, _ = programmed_array(rng)
        report = array.program_cells(
            np.empty(0, dtype=int), np.empty(0, dtype=int), np.empty(0)
        )
        assert report.cells_written == 0

    def test_write_log_accumulates(self, rng):
        array, _, _ = programmed_array(rng)
        n_events = len(array.write_log)
        array.program_cells(
            np.array([0]), np.array([0]),
            np.array([YAKOPCIC_NAECON14.g_on * 0.7]),
        )
        assert len(array.write_log) == n_events + 1
        assert array.total_write_report.cells_written >= 1


class TestMultiply:
    def test_matches_eqn5_closed_form(self, rng):
        array, _, _ = programmed_array(rng)
        v_in = rng.uniform(-0.5, 0.5, size=array.n_rows)
        g = array.actual_conductances
        expected = (g.T @ v_in) / (array.g_sense + g.sum(axis=0))
        np.testing.assert_allclose(array.multiply(v_in), expected)

    def test_output_bounded_by_input_peak(self, rng):
        array, _, _ = programmed_array(rng)
        v_in = rng.uniform(-0.5, 0.5, size=array.n_rows)
        assert np.max(np.abs(array.multiply(v_in))) <= np.max(np.abs(v_in))

    def test_shape_validation(self, rng):
        array, _, _ = programmed_array(rng, n=5)
        with pytest.raises(ValueError, match="shape"):
            array.multiply(np.zeros(4))

    def test_nominal_denominators(self, rng):
        array, _, _ = programmed_array(rng)
        expected = array.g_sense + array.nominal_conductances.sum(axis=0)
        np.testing.assert_allclose(
            array.nominal_denominators(), expected
        )


class TestSolve:
    def test_solve_inverts_multiply_relation(self, rng):
        array, _, _ = programmed_array(rng)
        v_out = rng.uniform(-0.3, 0.3, size=array.n_cols)
        v_in = array.solve(v_out)
        g = array.actual_conductances
        np.testing.assert_allclose(
            g.T @ v_in, array.g_sense * v_out, rtol=1e-9, atol=1e-12
        )

    def test_requires_square(self):
        array = CrossbarArray(3, 4)
        with pytest.raises(CrossbarSolveError, match="square"):
            array.solve(np.zeros(4))

    def test_singular_system_raises(self):
        array = CrossbarArray(3, 3, params=HP_TIO2)
        # Leave the array blank: all-zero conductances are singular.
        with pytest.raises(CrossbarSolveError, match="singular"):
            array.solve(np.ones(3))

    def test_shape_validation(self, rng):
        array, _, _ = programmed_array(rng, n=4)
        with pytest.raises(ValueError, match="shape"):
            array.solve(np.zeros(5))


class TestFullyOpenCells:
    """Regression: stuck-OFF (conductance 0.0) cells must never produce
    division by zero — not in the analog primitives, not in the mapping
    scales, not in the operator decode path."""

    def test_multiply_finite_with_all_cells_open(self):
        array = CrossbarArray(4, 4, params=HP_TIO2)
        # Blank array: every cell fully open (actual conductance 0.0).
        out = array.multiply(np.ones(4))
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, np.zeros(4))

    def test_denominators_positive_with_open_columns(self):
        array = CrossbarArray(4, 4, params=HP_TIO2)
        targets = np.full((4, 4), HP_TIO2.g_on * 0.5)
        targets[:, 2] = 0.0  # whole bit-line open
        array.program(targets)
        assert np.all(array.nominal_denominators() > 0)
        out = array.multiply(np.ones(4))
        assert np.all(np.isfinite(out))

    def test_solve_raises_instead_of_returning_nonfinite(self):
        array = CrossbarArray(3, 3, params=HP_TIO2)
        targets = np.full((3, 3), HP_TIO2.g_on * 0.5)
        targets[:, 1] = 0.0  # open column makes the system singular
        array.program(targets)
        with pytest.raises(CrossbarSolveError):
            array.solve(np.ones(3))

    def test_fast_mapping_scales_finite_for_zero_matrices(self):
        from repro.crossbar.mapping import map_matrix_per_row

        zero = np.zeros((3, 3))
        for mapping in (
            map_matrix(zero, HP_TIO2),
            map_matrix_per_row(zero, HP_TIO2),
        ):
            assert np.all(np.isfinite(mapping.scale_vector))
            assert np.all(mapping.scale_vector > 0)
            assert np.all(np.isfinite(mapping.decode_matrix()))

    def test_operator_decode_finite_with_stuck_open_cells(self):
        from repro.crossbar.ops import AnalogMatrixOperator
        from repro.devices.faults import StuckAtFaults

        matrix = np.abs(np.random.default_rng(0).normal(size=(5, 5))) + 0.1
        operator = AnalogMatrixOperator(
            matrix,
            params=HP_TIO2,
            variation=StuckAtFaults(HP_TIO2, stuck_off_rate=0.45),
            rng=np.random.default_rng(1),
        )
        out = operator.multiply(np.ones(5))
        assert np.all(np.isfinite(out))


class TestWriteReportAggregation:
    """``total_write_report`` over mixed program / program_cells runs."""

    def test_totals_equal_sum_of_write_log(self, rng):
        array, _, mapping = programmed_array(rng)
        array.program_cells(
            np.array([0, 1]),
            np.array([1, 2]),
            np.full(2, YAKOPCIC_NAECON14.g_on * 0.3),
        )
        array.program(mapping.conductances)  # full rewrite on top
        total = array.total_write_report
        by_hand = array.write_log[0]
        for report in array.write_log[1:]:
            by_hand = by_hand + report
        assert total == by_hand
        assert len(array.write_log) == 3

    def test_full_program_then_selective_costs_accumulate(self, rng):
        array, _, _ = programmed_array(rng, n=4)
        first = array.total_write_report
        assert first.cells_written == 16
        array.program_cells(
            np.array([0]), np.array([0]),
            np.array([YAKOPCIC_NAECON14.g_on * 0.4]),
        )
        total = array.total_write_report
        assert total.cells_written == 17
        assert total.pulses > first.pulses
        assert total.latency_s > first.latency_s
        assert total.energy_j > first.energy_j

    def test_unchanged_cells_add_no_cost(self, rng):
        array, _, mapping = programmed_array(rng)
        before = array.total_write_report
        # Re-issuing identical targets writes nothing...
        report = array.program(mapping.conductances)
        assert report.cells_written == 0
        assert report.pulses == 0
        # ...but still logs an (empty) event, leaving totals unchanged.
        assert array.total_write_report == before

    def test_subtraction_scopes_a_window(self, rng):
        array, _, _ = programmed_array(rng, n=4)
        baseline = array.total_write_report
        array.program_cells(
            np.array([1, 2]), np.array([1, 2]),
            np.full(2, YAKOPCIC_NAECON14.g_on * 0.25),
        )
        window = array.total_write_report - baseline
        assert window.cells_written == 2
        assert window.pulses > 0
        assert window.energy_j > 0
        # Round trip: baseline + window == lifetime total.
        assert baseline + window == array.total_write_report

    def test_blank_array_reports_zero(self):
        array = CrossbarArray(3, 3)
        total = array.total_write_report
        assert total.cells_written == 0
        assert total.pulses == 0
        assert total.latency_s == 0.0
        assert total.energy_j == 0.0


class TestStuckOffInjection:
    def test_injection_detaches_actual_from_nominal(self, rng):
        array, _, _ = programmed_array(rng, n=4)
        touched = array.inject_stuck_off(0.5, rng=rng)
        assert touched == 8  # 2 of 4 rows, all 4 columns
        assert (array.actual_conductances == 0.0).sum() >= 8
        # The controller's nominal view is untouched.
        assert array.nominal_conductances.min() > 0

    def test_full_injection_zeroes_every_row(self, rng):
        array, _, _ = programmed_array(rng, n=3)
        assert array.inject_stuck_off(1.0) == 9
        assert np.all(array.actual_conductances == 0.0)

    def test_rejects_bad_fraction(self, rng):
        array, _, _ = programmed_array(rng, n=3)
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                array.inject_stuck_off(bad)
