"""Tests for the high-level analog matrix operator."""

import numpy as np
import pytest

from repro.crossbar import AnalogMatrixOperator
from repro.devices import (
    HP_TIO2,
    YAKOPCIC_NAECON14,
    NoVariation,
    UniformVariation,
)
from repro.exceptions import CrossbarSolveError, MappingError


def operator_for(rng, matrix, **kwargs):
    kwargs.setdefault("params", YAKOPCIC_NAECON14)
    kwargs.setdefault("rng", rng)
    return AnalogMatrixOperator(matrix, **kwargs)


class TestConstruction:
    def test_rejects_negative_matrix(self, rng):
        with pytest.raises(MappingError, match="negative"):
            operator_for(rng, np.array([[-1.0, 0.0], [0.0, 1.0]]))

    def test_rejects_non_2d(self, rng):
        with pytest.raises(MappingError):
            operator_for(rng, np.ones(3))

    def test_rejects_nan(self, rng):
        with pytest.raises(MappingError, match="finite"):
            operator_for(rng, np.array([[np.nan]]))

    def test_rejects_bad_headroom(self, rng):
        with pytest.raises(ValueError, match="headroom"):
            operator_for(rng, np.ones((2, 2)), scale_headroom=0.5)

    def test_rejects_unknown_quantization(self, rng):
        with pytest.raises(ValueError, match="quantization"):
            operator_for(rng, np.ones((2, 2)), quantization="fancy")

    def test_rejects_unknown_off_state(self, rng):
        with pytest.raises(ValueError, match="off_state"):
            operator_for(rng, np.ones((2, 2)), off_state="weird")


class TestMultiply:
    def test_accuracy_ideal_hardware(self, rng):
        matrix = rng.uniform(0.1, 2.0, size=(7, 5))
        op = operator_for(rng, matrix, dac_bits=None, adc_bits=None)
        x = rng.uniform(-1, 1, size=5)
        np.testing.assert_allclose(op.multiply(x), matrix @ x, rtol=1e-9)

    def test_accuracy_8bit(self, rng):
        matrix = rng.uniform(0.1, 2.0, size=(6, 6))
        op = operator_for(rng, matrix)
        x = rng.uniform(-1, 1, size=6)
        y = op.multiply(x)
        ref = matrix @ x
        assert np.max(np.abs(y - ref)) <= 0.02 * np.max(np.abs(ref))

    def test_variation_degrades_accuracy(self, rng):
        matrix = rng.uniform(0.1, 2.0, size=(8, 8))
        x = rng.uniform(-1, 1, size=8)
        ideal = operator_for(
            rng, matrix, dac_bits=None, adc_bits=None
        ).multiply(x)
        noisy = operator_for(
            rng,
            matrix,
            variation=UniformVariation(0.2),
            dac_bits=None,
            adc_bits=None,
        ).multiply(x)
        ref = matrix @ x
        assert np.max(np.abs(noisy - ref)) > np.max(np.abs(ideal - ref))

    def test_zero_input(self, rng):
        op = operator_for(rng, np.ones((3, 3)))
        np.testing.assert_array_equal(op.multiply(np.zeros(3)), np.zeros(3))

    def test_subnormal_input_treated_as_zero(self, rng):
        # A subnormal peak would overflow the encoding gain to inf;
        # the operator must flush it to zero instead of producing NaN.
        op = operator_for(rng, np.ones((3, 3)))
        x = np.full(3, 5e-320)
        np.testing.assert_array_equal(op.multiply(x), np.zeros(3))
        np.testing.assert_array_equal(
            op.solve(np.full(3, 5e-320)), np.zeros(3)
        )

    def test_shape_validation(self, rng):
        op = operator_for(rng, np.ones((3, 4)))
        with pytest.raises(ValueError, match="shape"):
            op.multiply(np.zeros(3))

    def test_scale_invariance_of_input(self, rng):
        # Auto-gain encoding: scaling the input scales the output.
        matrix = rng.uniform(0.1, 1.0, size=(5, 5))
        op = operator_for(rng, matrix, dac_bits=None, adc_bits=None)
        x = rng.uniform(-1, 1, size=5)
        np.testing.assert_allclose(
            op.multiply(1000.0 * x), 1000.0 * op.multiply(x), rtol=1e-9
        )


class TestSolve:
    def test_accuracy_ideal_hardware(self, rng):
        matrix = rng.uniform(0.1, 2.0, size=(6, 6)) + 2 * np.eye(6)
        op = operator_for(rng, matrix, dac_bits=None, adc_bits=None)
        b = rng.uniform(-1, 1, size=6)
        np.testing.assert_allclose(
            op.solve(b), np.linalg.solve(matrix, b), rtol=1e-9
        )

    def test_accuracy_8bit(self, rng):
        matrix = rng.uniform(0.1, 2.0, size=(6, 6)) + 2 * np.eye(6)
        op = operator_for(rng, matrix)
        b = rng.uniform(-1, 1, size=6)
        ref = np.linalg.solve(matrix, b)
        assert np.max(np.abs(op.solve(b) - ref)) <= 0.05 * np.max(
            np.abs(ref)
        )

    def test_zero_rhs(self, rng):
        op = operator_for(rng, np.eye(4))
        np.testing.assert_array_equal(op.solve(np.zeros(4)), np.zeros(4))

    def test_singular_matrix_raises(self, rng):
        matrix = np.zeros((3, 3))
        matrix[0, 0] = 1.0
        op = operator_for(rng, matrix)
        with pytest.raises(CrossbarSolveError):
            op.solve(np.ones(3))

    def test_non_square_raises(self, rng):
        op = operator_for(rng, np.ones((3, 4)))
        with pytest.raises(CrossbarSolveError, match="square"):
            op.solve(np.ones(3))


class TestUpdates:
    def test_cell_update_changes_result(self, rng):
        matrix = rng.uniform(0.5, 1.0, size=(4, 4))
        op = operator_for(rng, matrix, dac_bits=None, adc_bits=None)
        op.update_coefficients(
            np.array([1]), np.array([2]), np.array([0.75])
        )
        assert op.coefficients[1, 2] == pytest.approx(0.75)
        x = rng.uniform(-1, 1, size=4)
        expected = op.coefficients @ x
        np.testing.assert_allclose(op.multiply(x), expected, rtol=1e-9)

    def test_outgrowing_value_triggers_remap(self, rng):
        matrix = rng.uniform(0.5, 1.0, size=(4, 4))
        op = operator_for(rng, matrix, scale_headroom=1.0)
        before = op.full_reprograms
        op.update_coefficients(
            np.array([0]), np.array([0]), np.array([50.0])
        )
        assert op.full_reprograms == before + 1
        x = rng.uniform(-1, 1, size=4)
        ref = op.coefficients @ x
        assert np.max(np.abs(op.multiply(x) - ref)) <= 0.05 * np.max(
            np.abs(ref)
        )

    def test_floor_to_representable_keeps_cells_alive(self, rng):
        matrix = np.eye(4)
        op = operator_for(rng, matrix, scale_headroom=1.0)
        # 1e-9 would truncate to the off state and make the diagonal
        # singular; the floor clamp must keep it solvable.
        op.update_coefficients(
            np.array([2]),
            np.array([2]),
            np.array([1e-9]),
            floor_to_representable=True,
        )
        op.solve(np.ones(4))  # must not raise

    def test_rejects_negative_values(self, rng):
        op = operator_for(rng, np.ones((3, 3)))
        with pytest.raises(MappingError, match="negative"):
            op.update_coefficients(
                np.array([0]), np.array([0]), np.array([-1.0])
            )

    def test_shape_mismatch_rejected(self, rng):
        op = operator_for(rng, np.ones((3, 3)))
        with pytest.raises(ValueError, match="matching"):
            op.update_coefficients(
                np.array([0, 1]), np.array([0]), np.array([1.0])
            )

    def test_write_report_grows(self, rng):
        op = operator_for(rng, np.ones((3, 3)))
        before = op.write_report.cells_written
        op.update_coefficients(
            np.array([0]), np.array([1]), np.array([0.5])
        )
        assert op.write_report.cells_written > before


class TestRenormalize:
    def test_noop_when_scale_never_drifted(self, rng):
        op = operator_for(rng, np.ones((3, 3)))
        report = op.renormalize()
        assert report.cells_written == 0
        assert report.pulses == 0

    def test_undoes_remap_drift(self, rng):
        matrix = rng.uniform(0.5, 1.0, size=(4, 4))
        op = operator_for(rng, matrix, scale_headroom=1.0)
        fresh_scale = op.scale
        # Grow a cell so the window remaps, then shrink it back: the
        # remap's scale sticks and inflates the representable floor.
        op.update_coefficients(
            np.array([0]), np.array([0]), np.array([50.0])
        )
        op.update_coefficients(
            np.array([0]), np.array([0]), np.array([matrix[0, 0]])
        )
        assert op.scale < fresh_scale
        floor_drifted = op.min_coefficient
        report = op.renormalize()
        assert report.cells_written > 0
        assert op.scale == pytest.approx(fresh_scale)
        assert op.min_coefficient < floor_drifted

    def test_multiply_accurate_after_renormalize(self, rng):
        matrix = rng.uniform(0.5, 1.0, size=(4, 4))
        op = operator_for(
            rng, matrix, scale_headroom=1.0,
            dac_bits=None, adc_bits=None,
        )
        op.update_coefficients(
            np.array([1]), np.array([1]), np.array([50.0])
        )
        op.update_coefficients(
            np.array([1]), np.array([1]), np.array([matrix[1, 1]])
        )
        op.renormalize()
        x = rng.uniform(-1, 1, size=4)
        np.testing.assert_allclose(
            op.multiply(x), op.coefficients @ x, rtol=1e-9
        )

    def test_row_scaled_renormalize_touches_only_drifted_rows(self, rng):
        matrix = rng.uniform(0.5, 1.0, size=(4, 4))
        op = operator_for(rng, matrix, row_scaling=True)
        # Overflow one row so it rescales, then restore it.  A 3x
        # excursion leaves the restored peak inside the hysteresis
        # window, so the shrunken row scale sticks until renormalize.
        op.update_coefficients(
            np.array([2]), np.array([2]), np.array([3.0])
        )
        op.update_coefficients(
            np.array([2]), np.array([2]), np.array([matrix[2, 2]])
        )
        assert not np.allclose(op.scale_vector, op._fresh_scales())
        report = op.renormalize()
        # Exactly one row (4 cells) rewritten, not the whole array.
        assert 0 < report.cells_written <= 4
        np.testing.assert_allclose(
            op.scale_vector, op._fresh_scales(), rtol=1e-12
        )


class TestRowScaling:
    def test_wide_dynamic_range_matrix(self, rng):
        # Rows differing by 1e6 in magnitude: a global mapping would
        # truncate the small rows entirely; row scaling keeps them.
        matrix = np.diag([1e-3, 1.0, 1e3, 1e6])
        op = operator_for(
            rng, matrix, row_scaling=True, dac_bits=None, adc_bits=None
        )
        b = np.array([1.0, 1.0, 1.0, 1.0])
        ref = np.linalg.solve(matrix, b)
        np.testing.assert_allclose(op.solve(b), ref, rtol=1e-9)

    def test_global_mapping_fails_same_matrix(self, rng):
        matrix = np.diag([1e-3, 1.0, 1e3, 1e6])
        op = operator_for(
            rng, matrix, row_scaling=False, dac_bits=None, adc_bits=None
        )
        # The tiny diagonal truncates to the off state -> singular.
        with pytest.raises(CrossbarSolveError):
            op.solve(np.ones(4))

    def test_multiply_matches_dense(self, rng):
        matrix = rng.uniform(0.1, 1.0, size=(5, 5)) * np.logspace(
            -2, 2, 5
        ).reshape(-1, 1)
        op = operator_for(
            rng, matrix, row_scaling=True, dac_bits=None, adc_bits=None
        )
        x = rng.uniform(-1, 1, size=5)
        np.testing.assert_allclose(op.multiply(x), matrix @ x, rtol=1e-9)

    def test_scale_property_raises_in_row_mode(self, rng):
        op = operator_for(rng, np.ones((3, 3)), row_scaling=True)
        with pytest.raises(MappingError, match="row-scaled"):
            _ = op.scale
        assert op.scale_vector.shape == (3,)

    def test_row_update_keeps_other_rows(self, rng):
        matrix = rng.uniform(0.5, 1.0, size=(4, 4))
        op = operator_for(
            rng, matrix, row_scaling=True, dac_bits=None, adc_bits=None
        )
        op.update_coefficients(
            np.array([0]), np.array([0]), np.array([500.0])
        )
        x = rng.uniform(-1, 1, size=4)
        np.testing.assert_allclose(
            op.multiply(x), op.coefficients @ x, rtol=1e-6
        )


class TestLeakMode:
    def test_leak_compensation_improves_multiply(self, rng):
        # Many sub-floor entries: the leak current is significant.
        matrix = np.full((6, 6), 1e-6)
        matrix[np.diag_indices(6)] = 1.0
        x = rng.uniform(0.1, 1.0, size=6)
        ref = matrix @ x
        compensated = AnalogMatrixOperator(
            matrix,
            params=HP_TIO2,
            rng=rng,
            off_state="leak",
            compensate_leak=True,
            dac_bits=None,
            adc_bits=None,
        ).multiply(x)
        uncompensated = AnalogMatrixOperator(
            matrix,
            params=HP_TIO2,
            rng=rng,
            off_state="leak",
            compensate_leak=False,
            dac_bits=None,
            adc_bits=None,
        ).multiply(x)
        err_comp = np.max(np.abs(compensated - ref))
        err_raw = np.max(np.abs(uncompensated - ref))
        assert err_comp < err_raw
