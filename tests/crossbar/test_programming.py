"""Tests for the write-pulse programming model."""

import numpy as np
import pytest

from repro.crossbar import WriteReport, plan_write
from repro.devices import HP_TIO2


class TestPlanWrite:
    def test_blank_array_write(self):
        targets = np.full((4, 4), HP_TIO2.g_on)
        report = plan_write(None, targets, HP_TIO2)
        assert report.cells_written == 16
        assert report.pulses == 16 * HP_TIO2.write_pulses_full_swing
        assert report.latency_s == pytest.approx(
            report.pulses * HP_TIO2.write_pulse_width
        )

    def test_no_change_no_cost(self, rng):
        state = rng.uniform(HP_TIO2.g_off, HP_TIO2.g_on, size=(5, 5))
        report = plan_write(state, state.copy(), HP_TIO2)
        assert report.cells_written == 0
        assert report.pulses == 0
        assert report.latency_s == 0.0
        assert report.energy_j == 0.0

    def test_partial_update_only_charges_changed_cells(self, rng):
        old = np.full((4, 4), HP_TIO2.g_off)
        new = old.copy()
        new[1, 2] = HP_TIO2.g_on
        report = plan_write(old, new, HP_TIO2)
        assert report.cells_written == 1

    def test_tolerance_deadband_skips_small_changes(self):
        old = np.full((2, 2), HP_TIO2.g_on * 0.5)
        new = old * 1.0001
        strict = plan_write(old, new, HP_TIO2, tolerance=0.0)
        lenient = plan_write(old, new, HP_TIO2, tolerance=0.01)
        assert lenient.cells_written == 0
        assert lenient.cells_written <= strict.cells_written

    def test_energy_includes_half_select_overhead(self):
        small = plan_write(
            None, np.full((2, 2), HP_TIO2.g_on), HP_TIO2
        )
        large = plan_write(
            None, np.full((16, 16), HP_TIO2.g_on), HP_TIO2
        )
        # Per-pulse energy grows with the number of half-selected lines.
        per_pulse_small = small.energy_j / small.pulses
        per_pulse_large = large.energy_j / large.pulses
        assert per_pulse_large > per_pulse_small

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            plan_write(np.zeros((2, 2)), np.zeros((3, 3)), HP_TIO2)


class TestWriteReport:
    def test_addition(self):
        a = WriteReport(1, 10, 1e-6, 2e-12)
        b = WriteReport(2, 20, 3e-6, 4e-12)
        total = a + b
        assert total.cells_written == 3
        assert total.pulses == 30
        assert total.latency_s == pytest.approx(4e-6)
        assert total.energy_j == pytest.approx(6e-12)
