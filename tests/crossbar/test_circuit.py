"""Tests for the detailed nodal-analysis circuit model."""

import numpy as np
import pytest

from repro.crossbar import DetailedCrossbarCircuit


def conductances(rng, n=6, m=6):
    return rng.uniform(1e-4, 1e-3, size=(n, m))


class TestIdealWires:
    def test_matches_eqn5_closed_form(self, rng):
        g = conductances(rng)
        circuit = DetailedCrossbarCircuit(g, g_sense=1e-3)
        v = rng.uniform(-0.5, 0.5, size=6)
        np.testing.assert_allclose(
            circuit.multiply(v), circuit.ideal_multiply(v), rtol=1e-12
        )

    def test_network_solution_approaches_ideal(self, rng):
        # Tiny (but nonzero) wire resistance: the sparse network solve
        # path must agree with the closed form.
        g = conductances(rng)
        circuit = DetailedCrossbarCircuit(
            g, g_sense=1e-3, wire_resistance=1e-9
        )
        v = rng.uniform(-0.5, 0.5, size=6)
        np.testing.assert_allclose(
            circuit.multiply(v), circuit.ideal_multiply(v), rtol=1e-4
        )

    def test_zero_error_for_ideal(self, rng):
        g = conductances(rng)
        circuit = DetailedCrossbarCircuit(g, g_sense=1e-3)
        v = rng.uniform(0, 0.5, size=6)
        assert circuit.ir_drop_error(v) == pytest.approx(0.0, abs=1e-12)


class TestParasitics:
    def test_ir_drop_grows_with_wire_resistance(self, rng):
        g = conductances(rng, 8, 8)
        v = rng.uniform(0, 0.5, size=8)
        errors = [
            DetailedCrossbarCircuit(
                g, g_sense=1e-3, wire_resistance=r
            ).ir_drop_error(v)
            for r in (0.1, 1.0, 10.0)
        ]
        assert errors[0] < errors[1] < errors[2]

    def test_ir_drop_grows_with_array_size(self, rng):
        v_small = rng.uniform(0.1, 0.5, size=4)
        v_large = rng.uniform(0.1, 0.5, size=16)
        g_small = rng.uniform(5e-4, 1e-3, size=(4, 4))
        g_large = rng.uniform(5e-4, 1e-3, size=(16, 16))
        err_small = DetailedCrossbarCircuit(
            g_small, g_sense=1e-3, wire_resistance=2.0
        ).ir_drop_error(v_small)
        err_large = DetailedCrossbarCircuit(
            g_large, g_sense=1e-3, wire_resistance=2.0
        ).ir_drop_error(v_large)
        assert err_large > err_small

    def test_driver_resistance_also_degrades(self, rng):
        g = conductances(rng)
        v = rng.uniform(0.1, 0.5, size=6)
        clean = DetailedCrossbarCircuit(g, g_sense=1e-3).multiply(v)
        loaded = DetailedCrossbarCircuit(
            g, g_sense=1e-3, driver_resistance=50.0
        ).multiply(v)
        assert not np.allclose(clean, loaded, rtol=1e-6)

    def test_isolated_crosspoints_supported(self, rng):
        g = conductances(rng)
        g[0, :] = 0.0
        circuit = DetailedCrossbarCircuit(
            g, g_sense=1e-3, wire_resistance=1.0
        )
        out = circuit.multiply(rng.uniform(0, 0.5, size=6))
        assert np.all(np.isfinite(out))


class TestValidation:
    def test_rejects_negative_conductance(self):
        with pytest.raises(ValueError, match="non-negative"):
            DetailedCrossbarCircuit(np.array([[-1.0]]), g_sense=1.0)

    def test_rejects_bad_g_sense(self):
        with pytest.raises(ValueError, match="g_sense"):
            DetailedCrossbarCircuit(np.ones((2, 2)), g_sense=0.0)

    def test_rejects_negative_parasitics(self):
        with pytest.raises(ValueError, match="parasitic"):
            DetailedCrossbarCircuit(
                np.ones((2, 2)), g_sense=1.0, wire_resistance=-1.0
            )

    def test_rejects_1d_input(self, rng):
        circuit = DetailedCrossbarCircuit(np.ones((2, 2)), g_sense=1.0)
        with pytest.raises(ValueError, match="shape"):
            circuit.multiply(np.zeros(3))
