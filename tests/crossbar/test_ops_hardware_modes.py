"""Cross-cutting hardware-mode tests for the analog operator."""

import numpy as np
import pytest

from repro.crossbar import AnalogMatrixOperator
from repro.devices import HP_TIO2, YAKOPCIC_NAECON14, UniformVariation


def op(rng, matrix, **kwargs):
    kwargs.setdefault("params", YAKOPCIC_NAECON14)
    kwargs.setdefault("rng", rng)
    return AnalogMatrixOperator(matrix, **kwargs)


class TestQuantizationModes:
    def test_entry_mode_handles_wide_dynamic_range_inputs(self, rng):
        matrix = rng.uniform(0.5, 1.0, size=(5, 5)) + np.eye(5)
        operator = op(rng, matrix, quantization="entry")
        x = np.array([1e-6, 1e-3, 1.0, 1e3, 1e6])
        y = operator.multiply(x)
        ref = matrix @ x
        assert np.max(np.abs(y - ref)) <= 0.02 * np.max(np.abs(ref))

    def test_vector_mode_loses_small_components(self, rng):
        matrix = np.eye(3)
        operator = op(rng, matrix, quantization="vector")
        x = np.array([1.0, 1e-6, 0.5])
        y = operator.multiply(x)
        # The 1e-6 component falls below one LSB of the peak-referenced
        # grid and vanishes.
        assert y[1] == 0.0

    def test_modes_agree_on_benign_inputs(self, rng):
        matrix = rng.uniform(0.5, 1.5, size=(4, 4))
        x = rng.uniform(0.5, 1.0, size=4)
        y_entry = op(
            rng, matrix.copy(), quantization="entry"
        ).multiply(x)
        y_vector = op(
            rng, matrix.copy(), quantization="vector"
        ).multiply(x)
        np.testing.assert_allclose(y_entry, y_vector, rtol=0.02)


class TestDevicePresets:
    def test_wider_window_represents_smaller_coefficients(self, rng):
        matrix = np.array([[1.0, 0.003], [0.003, 1.0]])
        hp = op(rng, matrix, params=HP_TIO2, dac_bits=None,
                adc_bits=None)
        yak = op(rng, matrix, params=YAKOPCIC_NAECON14, dac_bits=None,
                 adc_bits=None)
        x = np.ones(2)
        # HP's 160:1 window truncates the 0.003 entries (below
        # a_max/160); Yakopcic's 1000:1 window keeps them.
        hp_err = np.max(np.abs(hp.multiply(x) - matrix @ x))
        yak_err = np.max(np.abs(yak.multiply(x) - matrix @ x))
        assert yak_err < hp_err

    def test_g_sense_override(self, rng):
        matrix = rng.uniform(0.5, 1.0, size=(3, 3))
        custom = op(
            rng, matrix, g_sense=YAKOPCIC_NAECON14.g_on * 5
        )
        assert custom.array.g_sense == pytest.approx(
            YAKOPCIC_NAECON14.g_on * 5
        )
        x = rng.uniform(-1, 1, size=3)
        ref = matrix @ x
        assert np.max(
            np.abs(custom.multiply(x) - ref)
        ) <= 0.02 * np.max(np.abs(ref))


class TestVariationInteractions:
    def test_unchanged_rewrite_skips_but_redraw_rerolls(self, rng):
        matrix = rng.uniform(0.5, 1.0, size=(4, 4))
        operator = op(
            rng, matrix, variation=UniformVariation(0.2),
            dac_bits=None, adc_bits=None,
        )
        x = rng.uniform(-1, 1, size=4)
        first = operator.multiply(x)
        # Proposing the coefficients already programmed is a no-op on
        # the differential path: zero pulses means zero new variation
        # draws, so the physical realization is untouched.
        idx = np.arange(4)
        report = operator.update_coefficients(
            np.repeat(idx, 4), np.tile(idx, 4), matrix.ravel()
        )
        assert report.cells_written == 0
        assert np.array_equal(operator.multiply(x), first)
        # An explicit reprogram (the recovery ladder's rung) re-rolls
        # every active cell's deviation ("process variation differs
        # from each time of writing").
        operator.redraw_variation()
        second = operator.multiply(x)
        assert not np.allclose(first, second)

    def test_variation_error_scales_with_level(self, rng):
        matrix = rng.uniform(0.5, 1.0, size=(12, 12))
        x = rng.uniform(-1, 1, size=12)
        ref = matrix @ x
        errors = []
        for level in (0.05, 0.20):
            trials = []
            for seed in range(6):
                operator = AnalogMatrixOperator(
                    matrix,
                    params=YAKOPCIC_NAECON14,
                    variation=UniformVariation(level),
                    rng=np.random.default_rng(seed),
                    dac_bits=None,
                    adc_bits=None,
                )
                trials.append(
                    np.max(np.abs(operator.multiply(x) - ref))
                )
            errors.append(np.mean(trials))
        assert errors[1] > errors[0]
