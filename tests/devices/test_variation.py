"""Tests for process-variation models."""

import numpy as np
import pytest

from repro.devices import (
    LognormalVariation,
    NoVariation,
    UniformVariation,
    variation_from_percent,
)


class TestNoVariation:
    def test_identity(self, rng):
        matrix = rng.uniform(0, 1, size=(5, 7))
        out = NoVariation().perturb(matrix, rng)
        np.testing.assert_array_equal(out, matrix)

    def test_returns_copy(self, rng):
        matrix = np.ones((3, 3))
        out = NoVariation().perturb(matrix, rng)
        out[0, 0] = 99.0
        assert matrix[0, 0] == 1.0

    def test_zero_magnitude(self):
        assert NoVariation().relative_magnitude == 0.0


class TestUniformVariation:
    def test_deviation_bounded(self, rng):
        matrix = rng.uniform(0.1, 1.0, size=(20, 20))
        model = UniformVariation(0.2)
        out = model.perturb(matrix, rng)
        ratio = out / matrix
        assert np.all(ratio >= 0.8 - 1e-12)
        assert np.all(ratio <= 1.2 + 1e-12)

    def test_does_not_mutate_input(self, rng):
        matrix = np.ones((4, 4))
        UniformVariation(0.1).perturb(matrix, rng)
        np.testing.assert_array_equal(matrix, np.ones((4, 4)))

    def test_zero_entries_stay_zero(self, rng):
        matrix = np.zeros((3, 3))
        out = UniformVariation(0.2).perturb(matrix, rng)
        np.testing.assert_array_equal(out, matrix)

    def test_fresh_draw_each_call(self, rng):
        matrix = np.ones((8, 8))
        model = UniformVariation(0.2)
        first = model.perturb(matrix, rng)
        second = model.perturb(matrix, rng)
        assert not np.allclose(first, second)

    def test_zero_fraction_is_identity(self, rng):
        matrix = rng.uniform(0, 1, size=(4, 4))
        out = UniformVariation(0.0).perturb(matrix, rng)
        np.testing.assert_array_equal(out, matrix)

    @pytest.mark.parametrize("bad", [-0.1, 1.0, 2.0])
    def test_rejects_bad_fraction(self, bad):
        with pytest.raises(ValueError, match="max_fraction"):
            UniformVariation(bad)

    def test_magnitude_matches_fraction(self):
        assert UniformVariation(0.15).relative_magnitude == 0.15

    def test_callable_interface(self, rng):
        matrix = np.ones((2, 2))
        model = UniformVariation(0.1)
        np.testing.assert_array_equal(
            model(matrix, np.random.default_rng(7)),
            model.perturb(matrix, np.random.default_rng(7)),
        )


class TestLognormalVariation:
    def test_output_positive(self, rng):
        matrix = rng.uniform(0.1, 1.0, size=(10, 10))
        out = LognormalVariation(0.5).perturb(matrix, rng)
        assert np.all(out > 0)

    def test_sigma_zero_is_identity(self, rng):
        matrix = rng.uniform(0.1, 1.0, size=(4, 4))
        out = LognormalVariation(0.0).perturb(matrix, rng)
        np.testing.assert_array_equal(out, matrix)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError, match="sigma"):
            LognormalVariation(-0.5)

    def test_magnitude_is_two_sigma(self):
        model = LognormalVariation(0.1)
        assert model.relative_magnitude == pytest.approx(
            np.expm1(0.2)
        )


class TestFromPercent:
    def test_zero_gives_ideal(self):
        assert isinstance(variation_from_percent(0), NoVariation)

    def test_positive_gives_uniform(self):
        model = variation_from_percent(10)
        assert isinstance(model, UniformVariation)
        assert model.max_fraction == pytest.approx(0.10)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="percent"):
            variation_from_percent(-5)
