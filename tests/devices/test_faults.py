"""Tests for the stuck-at fault model (extension study)."""

import numpy as np
import pytest

from repro.core import (
    CrossbarSolverSettings,
    SolveStatus,
    solve_crossbar,
)
from repro.devices import (
    YAKOPCIC_NAECON14,
    StuckAtFaults,
    UniformVariation,
)
from repro.workloads import random_feasible_lp


class TestModel:
    def test_no_faults_is_identity(self, rng):
        model = StuckAtFaults(YAKOPCIC_NAECON14)
        matrix = rng.uniform(1e-4, 1e-3, size=(10, 10))
        np.testing.assert_array_equal(
            model.perturb(matrix, rng), matrix
        )

    def test_stuck_on_cells_at_g_on(self, rng):
        model = StuckAtFaults(
            YAKOPCIC_NAECON14, stuck_on_rate=0.2
        )
        matrix = np.full((50, 50), 1e-4)
        out = model.perturb(matrix, rng)
        stuck = out == YAKOPCIC_NAECON14.g_on
        fraction = stuck.mean()
        assert 0.1 < fraction < 0.3

    def test_stuck_off_cells_at_zero(self, rng):
        model = StuckAtFaults(
            YAKOPCIC_NAECON14, stuck_off_rate=0.2
        )
        matrix = np.full((50, 50), 1e-4)
        out = model.perturb(matrix, rng)
        fraction = (out == 0.0).mean()
        assert 0.1 < fraction < 0.3

    def test_composes_with_soft_variation(self, rng):
        model = StuckAtFaults(
            YAKOPCIC_NAECON14,
            stuck_off_rate=0.05,
            base=UniformVariation(0.1),
        )
        matrix = np.full((40, 40), 1e-4)
        out = model.perturb(matrix, rng)
        healthy = out[(out != 0.0) & (out != YAKOPCIC_NAECON14.g_on)]
        ratio = healthy / 1e-4
        assert np.all(ratio >= 0.9 - 1e-12)
        assert np.all(ratio <= 1.1 + 1e-12)
        assert model.relative_magnitude == pytest.approx(0.1)

    def test_fresh_fault_positions_each_draw(self, rng):
        model = StuckAtFaults(
            YAKOPCIC_NAECON14, stuck_off_rate=0.1
        )
        matrix = np.full((30, 30), 1e-4)
        first = model.perturb(matrix, rng) == 0.0
        second = model.perturb(matrix, rng) == 0.0
        assert not np.array_equal(first, second)

    @pytest.mark.parametrize("rate", [-0.1, 0.5, 0.9])
    def test_rate_validation(self, rate):
        with pytest.raises(ValueError):
            StuckAtFaults(YAKOPCIC_NAECON14, stuck_on_rate=rate)


class TestSolverUnderFaults:
    def test_low_fault_rate_still_solves(self, rng):
        problem = random_feasible_lp(15, rng=rng)
        settings = CrossbarSolverSettings(
            variation=StuckAtFaults(
                YAKOPCIC_NAECON14,
                stuck_off_rate=0.002,
                base=UniformVariation(0.05),
            ),
            retries=4,
        )
        result = solve_crossbar(
            problem, settings, rng=np.random.default_rng(0)
        )
        # The retry scheme (fresh fault draw per reprogram) rescues
        # solves at realistic fault rates.
        assert result.status in (
            SolveStatus.OPTIMAL,
            SolveStatus.ITERATION_LIMIT,
        )
