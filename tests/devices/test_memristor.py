"""Tests for the single-device memristor model."""

import pytest

from repro.devices import HP_TIO2, Memristor


class TestConstruction:
    def test_initial_state_off(self):
        device = Memristor()
        assert device.x == 0.0
        assert device.resistance == pytest.approx(HP_TIO2.r_off)

    def test_initial_state_on(self):
        device = Memristor(x0=1.0)
        assert device.resistance == pytest.approx(HP_TIO2.r_on)

    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_rejects_out_of_range_x0(self, bad):
        with pytest.raises(ValueError, match="x0"):
            Memristor(x0=bad)

    def test_state_snapshot(self):
        device = Memristor(x0=0.5)
        state = device.state()
        assert state.x == 0.5
        assert state.conductance == pytest.approx(1.0 / state.resistance)


class TestThresholdSwitching:
    def test_subthreshold_voltage_does_not_switch(self):
        device = Memristor(x0=0.5)
        device.apply_voltage(HP_TIO2.v_threshold * 0.9, duration=1e-3)
        assert device.x == 0.5

    def test_positive_pulse_moves_toward_on(self):
        device = Memristor(x0=0.2)
        device.apply_voltage(HP_TIO2.v_write, duration=1e-6)
        assert device.x > 0.2

    def test_negative_pulse_moves_toward_off(self):
        device = Memristor(x0=0.8)
        device.apply_voltage(-HP_TIO2.v_write, duration=1e-6)
        assert device.x < 0.8

    def test_state_clamps_at_window_edges(self):
        device = Memristor(x0=0.9)
        device.apply_voltage(HP_TIO2.v_write, duration=10.0)
        assert device.x == 1.0
        device.apply_voltage(-HP_TIO2.v_write, duration=10.0)
        assert device.x == 0.0

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError, match="duration"):
            Memristor().apply_voltage(2.0, duration=-1.0)


class TestOhmicRead:
    def test_current_is_ohmic(self):
        device = Memristor(x0=0.5)
        v = 0.3
        assert device.current(v) == pytest.approx(v / device.resistance)

    def test_read_does_not_change_state(self):
        device = Memristor(x0=0.5)
        device.current(0.3)
        assert device.x == 0.5


class TestProgramming:
    def test_program_reaches_target(self):
        device = Memristor()
        target = 0.5 * (HP_TIO2.g_on + HP_TIO2.g_off)
        device.program_to_conductance(target)
        assert device.conductance == pytest.approx(target, rel=1e-9)

    def test_pulse_count_scales_with_swing(self):
        device = Memristor(x0=0.0)
        pulses_full = device.program_to_conductance(HP_TIO2.g_on)
        assert pulses_full == HP_TIO2.write_pulses_full_swing
        # Already there: no pulses needed.
        assert device.program_to_conductance(HP_TIO2.g_on) == 0

    def test_rejects_out_of_range_target(self):
        device = Memristor()
        with pytest.raises(ValueError, match="range"):
            device.program_to_conductance(HP_TIO2.g_on * 2)
        with pytest.raises(ValueError, match="range"):
            device.program_to_conductance(HP_TIO2.g_off / 2)
