"""Tests for device parameter bundles."""

import dataclasses

import pytest

from repro.devices import HP_TIO2, YAKOPCIC_NAECON14, DeviceParameters


class TestPresets:
    def test_hp_preset_is_consistent(self):
        assert HP_TIO2.r_on < HP_TIO2.r_off
        assert HP_TIO2.g_on > HP_TIO2.g_off
        assert HP_TIO2.g_on == pytest.approx(1.0 / HP_TIO2.r_on)

    def test_yakopcic_preset_has_wider_dynamic_range(self):
        assert (
            YAKOPCIC_NAECON14.resistance_ratio > HP_TIO2.resistance_ratio
        )

    def test_conductance_range_ordering(self):
        lo, hi = HP_TIO2.conductance_range
        assert lo < hi

    def test_half_select_bias_below_threshold(self):
        for preset in (HP_TIO2, YAKOPCIC_NAECON14):
            assert abs(preset.v_write) / 2 <= abs(preset.v_threshold)
            assert abs(preset.v_read) < abs(preset.v_threshold)


class TestValidation:
    def _base(self, **overrides):
        fields = dict(
            name="test",
            r_on=100.0,
            r_off=10_000.0,
            v_threshold=1.0,
            v_write=2.0,
            v_read=0.5,
            film_thickness=10e-9,
            dopant_mobility=1e-14,
            write_pulse_width=10e-9,
            write_pulses_full_swing=100,
            write_energy_per_pulse=1e-12,
            read_settle_time=10e-9,
            read_energy_per_cell=1e-15,
        )
        fields.update(overrides)
        return DeviceParameters(**fields)

    def test_valid_construction(self):
        params = self._base()
        assert params.resistance_ratio == pytest.approx(100.0)

    def test_rejects_inverted_resistances(self):
        with pytest.raises(ValueError, match="r_on"):
            self._base(r_on=20_000.0)

    def test_rejects_negative_resistance(self):
        with pytest.raises(ValueError, match="positive"):
            self._base(r_on=-1.0)

    def test_rejects_subthreshold_write(self):
        with pytest.raises(ValueError, match="exceed the threshold"):
            self._base(v_write=0.5)

    def test_rejects_disturbing_half_select(self):
        with pytest.raises(ValueError, match="half-select"):
            self._base(v_write=3.0)

    def test_rejects_superthreshold_read(self):
        with pytest.raises(ValueError, match="read voltage"):
            self._base(v_read=1.5)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            self._base().r_on = 1.0


class TestWriteCosts:
    def test_write_time_scales_with_swing(self):
        full = HP_TIO2.write_time(1.0)
        half = HP_TIO2.write_time(0.5)
        assert full == pytest.approx(2 * half)
        assert HP_TIO2.write_time(0.0) == 0.0

    def test_write_energy_scales_with_swing(self):
        assert HP_TIO2.write_energy(1.0) == pytest.approx(
            HP_TIO2.write_pulses_full_swing
            * HP_TIO2.write_energy_per_pulse
        )

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_rejects_out_of_range_fraction(self, bad):
        with pytest.raises(ValueError, match="fraction"):
            HP_TIO2.write_time(bad)
        with pytest.raises(ValueError, match="fraction"):
            HP_TIO2.write_energy(bad)
