"""Tests for the parallel, resumable sweep execution engine."""

import json

import numpy as np
import pytest

from repro.analysis import reconcile_with_counters
from repro.experiments import (
    CellKey,
    SweepConfig,
    accuracy_sweep,
    grid_keys,
    run_sweep,
    sweep_fingerprint,
)
from repro.experiments.engine import CELL_CRASHED, SweepCache, resolve_spec
from repro.experiments.runner import cell_seed, solver_for
from repro.obs import RecordingTracer
from repro.workloads import random_feasible_lp

TINY = SweepConfig(sizes=(6, 8), variations=(0, 10), trials=2)
CHEAP = SweepConfig(sizes=(6, 8), variations=(0,), trials=2)

CRASH_SPEC = "tests.experiments.crash_spec:SPEC"


class TestDeterminism:
    def test_workers_1_vs_4_rows_identical(self):
        serial = run_sweep("accuracy", "crossbar", TINY, workers=1)
        parallel = run_sweep("accuracy", "crossbar", TINY, workers=4)
        # Bit-identical: dataclass equality compares every float
        # exactly, and the rendered tables match byte for byte.
        assert serial.rows == parallel.rows
        spec = resolve_spec("accuracy")
        assert spec.render(serial.rows) == spec.render(parallel.rows)

    def test_sweep_wrapper_matches_engine(self):
        rows = accuracy_sweep("reference", CHEAP, workers=2)
        assert rows == run_sweep("accuracy", "reference", CHEAP).rows

    def test_fingerprint_distinguishes_grids(self):
        a = sweep_fingerprint("accuracy", "crossbar", TINY)
        b = sweep_fingerprint("accuracy", "crossbar", CHEAP)
        c = sweep_fingerprint("accuracy", "reference", TINY)
        d = sweep_fingerprint("latency", "crossbar", TINY)
        assert len({a, b, c, d}) == 4

    def test_grid_keys_order(self):
        keys = grid_keys(CHEAP)
        assert keys[0] == CellKey(size=6, variation=0, trial=0)
        assert len(keys) == 4


class TestResume:
    def test_resume_skips_completed_cells(self, tmp_path):
        cache = tmp_path / "cells.jsonl"
        first = run_sweep(
            "accuracy", "reference", CHEAP, cache_path=cache
        )
        assert first.executed == 4 and first.skipped == 0
        second = run_sweep(
            "accuracy", "reference", CHEAP, cache_path=cache, workers=2
        )
        assert second.executed == 0 and second.skipped == 4
        assert second.rows == first.rows

    def test_interrupted_cache_reruns_missing_cells(self, tmp_path):
        cache = tmp_path / "cells.jsonl"
        first = run_sweep(
            "accuracy", "reference", CHEAP, cache_path=cache
        )
        lines = cache.read_text().splitlines()
        cache.write_text("\n".join(lines[:-2]) + "\n")  # drop 2 cells
        resumed = run_sweep(
            "accuracy", "reference", CHEAP, cache_path=cache
        )
        assert resumed.executed == 2 and resumed.skipped == 2
        assert resumed.rows == first.rows

    def test_cache_bound_to_fingerprint(self, tmp_path):
        cache = tmp_path / "cells.jsonl"
        run_sweep("accuracy", "reference", CHEAP, cache_path=cache)
        with pytest.raises(ValueError, match="different sweep"):
            run_sweep("accuracy", "crossbar", CHEAP, cache_path=cache)

    def test_cache_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text(json.dumps({"kind": "meta"}) + "\n")
        with pytest.raises(ValueError, match="not a repro-sweep-cache"):
            SweepCache(path, "abc123")

    def test_failed_cells_are_retried_on_resume(self, tmp_path):
        cache = tmp_path / "cells.jsonl"
        first = run_sweep(
            CRASH_SPEC, "reference", CHEAP, cache_path=cache
        )
        assert len(first.failures) == 1
        resumed = run_sweep(
            CRASH_SPEC, "reference", CHEAP, cache_path=cache
        )
        # The crashed cell is not "completed": it runs again.
        assert resumed.executed == 1
        assert resumed.failures[0].key == first.failures[0].key


class TestFailureIsolation:
    def test_crashed_cell_recorded_not_fatal_inline(self):
        run = run_sweep(CRASH_SPEC, "reference", CHEAP, workers=1)
        assert len(run.failures) == 1
        outcome = run.failures[0]
        assert outcome.key == CellKey(size=8, variation=0, trial=1)
        assert outcome.payload is None
        assert outcome.failure.failure_reason == CELL_CRASHED
        assert outcome.failure.error_type == "RuntimeError"
        assert "planted crash" in outcome.failure.message
        # The other cells aggregated normally around the hole.
        by_size = {row["size"]: row for row in run.rows}
        assert by_size[6]["values"] == [6000, 6001]
        assert by_size[8]["values"] == [8000, None]

    def test_crashed_cell_recorded_not_fatal_parallel(self):
        run = run_sweep(CRASH_SPEC, "reference", CHEAP, workers=2)
        assert len(run.failures) == 1
        assert run.failures[0].failure.failure_reason == CELL_CRASHED
        assert run.rows == run_sweep(CRASH_SPEC, "reference", CHEAP).rows


class TestTraceMerge:
    def test_parallel_counters_match_serial(self):
        serial, parallel = RecordingTracer(), RecordingTracer()
        run_sweep("accuracy", "crossbar", CHEAP, tracer=serial)
        run_sweep(
            "accuracy", "crossbar", CHEAP, tracer=parallel, workers=2
        )
        assert serial.counters == parallel.counters
        assert serial.counters["sweep.trials"] == 4.0

    def test_sweep_cell_spans_carry_worker_ids(self):
        tracer = RecordingTracer()
        run_sweep(
            "accuracy", "reference", CHEAP, tracer=tracer, workers=2
        )
        cells = [
            event
            for event in tracer.events
            if getattr(event, "name", None) == "sweep_cell"
            and hasattr(event, "attrs")
        ]
        assert len(cells) == 4
        assert all(isinstance(c.attrs["worker"], int) for c in cells)
        coords = {
            (c.attrs["size"], c.attrs["variation"], c.attrs["trial"])
            for c in cells
        }
        assert len(coords) == 4

    def test_merged_span_ids_unique_and_linked(self):
        tracer = RecordingTracer()
        run_sweep(
            "accuracy", "crossbar", CHEAP, tracer=tracer, workers=2
        )
        spans = [e for e in tracer.events if hasattr(e, "parent_id")]
        ids = [s.span_id for s in spans]
        assert len(ids) == len(set(ids))
        known = set(ids)
        assert all(
            s.parent_id is None or s.parent_id in known for s in spans
        )

    def test_merged_trace_reconciles_with_crossbar_counters(self):
        """The sweep's merged trace replays to the exact analog totals.

        One-cell sweep: rerun the identical trial directly (same
        ``cell_seed`` derivation) and check the merged worker events
        reconcile field-by-field with the direct run's
        ``CrossbarCounters``.
        """
        config = SweepConfig(sizes=(8,), variations=(0,), trials=1)
        tracer = RecordingTracer()
        run_sweep(
            "accuracy", "crossbar", config, tracer=tracer, workers=2
        )

        seed = cell_seed(config, 8, 0, 0)
        rng = np.random.default_rng(seed)
        problem = random_feasible_lp(8, rng=rng)
        solve = solver_for("crossbar", 0)
        result = solve(problem, np.random.default_rng(seed.spawn(1)[0]))

        rows = reconcile_with_counters(tracer.event_dicts(), result)
        mismatched = [row.name for row in rows if not row.matches]
        assert not mismatched, mismatched


class TestBatchedTrials:
    def test_batched_rows_bit_identical_serial(self):
        serial = run_sweep("accuracy", "crossbar", TINY, workers=1)
        batched = run_sweep(
            "accuracy", "crossbar", TINY, workers=1, batch_trials=True
        )
        assert serial.rows == batched.rows
        spec = resolve_spec("accuracy")
        assert spec.render(serial.rows) == spec.render(batched.rows)

    def test_batched_parallel_workers_identical(self):
        serial = run_sweep("accuracy", "crossbar", TINY, workers=1)
        batched = run_sweep(
            "accuracy", "crossbar", TINY, workers=4, batch_trials=True
        )
        assert serial.rows == batched.rows

    def test_reference_solver_ignores_batching(self):
        serial = run_sweep("accuracy", "reference", CHEAP, workers=1)
        batched = run_sweep(
            "accuracy", "reference", CHEAP, workers=1, batch_trials=True
        )
        assert serial.rows == batched.rows
