"""Tests for the experiment harness (sweeps and rendering)."""

import numpy as np
import pytest

from repro.core import SolverResult
from repro.experiments import (
    SOLVER_NAMES,
    SweepConfig,
    accuracy_sweep,
    energy_sweep,
    infeasibility_sweep,
    latency_sweep,
    paper_scale,
    render_accuracy,
    render_energy,
    render_infeasibility,
    render_latency,
    settings_for,
    solver_for,
)
from repro.experiments.runner import cell_seed
from repro.workloads import random_feasible_lp

TINY = SweepConfig(sizes=(8,), variations=(0,), trials=2)


class TestRunner:
    def test_solver_registry(self, rng):
        problem = random_feasible_lp(8, rng=rng)
        for name in SOLVER_NAMES:
            solve = solver_for(name, 0)
            result = solve(problem, np.random.default_rng(0))
            assert isinstance(result, SolverResult)

    def test_unknown_solver_rejected(self):
        with pytest.raises(ValueError, match="unknown solver"):
            solver_for("bogus", 0)
        with pytest.raises(ValueError, match="unknown solver"):
            settings_for("bogus", 0)

    def test_settings_carry_variation(self):
        settings = settings_for("crossbar", 10)
        assert settings.variation.relative_magnitude == pytest.approx(
            0.10
        )

    def test_overrides_forwarded(self):
        settings = settings_for("crossbar", 0, max_iterations=7)
        assert settings.max_iterations == 7

    def test_cell_seed_deterministic(self):
        config = SweepConfig()
        a = cell_seed(config, 8, 10, 0)
        b = cell_seed(config, 8, 10, 0)
        assert (
            np.random.default_rng(a).integers(1 << 30)
            == np.random.default_rng(b).integers(1 << 30)
        )

    def test_cell_seed_distinguishes_cells(self):
        config = SweepConfig()
        a = cell_seed(config, 8, 10, 0)
        b = cell_seed(config, 8, 10, 1)
        assert (
            np.random.default_rng(a).integers(1 << 30)
            != np.random.default_rng(b).integers(1 << 30)
        )

    def test_paper_scale_grid(self):
        config = paper_scale()
        assert config.sizes[-1] == 1024
        assert config.trials == 100

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SweepConfig(sizes=())
        with pytest.raises(ValueError):
            SweepConfig(trials=0)


class TestSweeps:
    def test_accuracy_rows(self):
        rows = accuracy_sweep("crossbar", TINY)
        assert len(rows) == 1
        row = rows[0]
        assert row.solved == 2
        assert row.error.mean < 0.05
        text = render_accuracy(rows)
        assert "mean_rel_err" in text
        assert "crossbar" in text

    def test_latency_rows(self):
        rows = latency_sweep("crossbar", TINY)
        row = rows[0]
        assert row.crossbar.mean > 0
        assert row.linprog_s > 0
        assert row.speedup_vs_linprog > 0
        assert "speedup" in render_latency(rows)

    def test_energy_rows(self):
        rows = energy_sweep("crossbar", TINY)
        row = rows[0]
        assert row.crossbar.mean > 0
        assert row.gain_vs_linprog > 0
        assert "crossbar_J" in render_energy(rows)

    def test_infeasibility_rows(self):
        rows = infeasibility_sweep("crossbar", TINY)
        row = rows[0]
        assert row.detected == 2
        assert row.detection_rate == 1.0
        assert row.speedup_vs_linprog > 0
        assert "detected" in render_infeasibility(rows)

    def test_reference_solver_sweep(self):
        rows = accuracy_sweep("reference", TINY)
        assert rows[0].error.mean < 1e-4
