"""Tests for the wire-parasitics tile-size study."""

import numpy as np
import pytest

from repro.experiments import (
    max_usable_tile,
    parasitics_sweep,
    render_parasitics,
)


@pytest.fixture(scope="module")
def rows():
    return parasitics_sweep(
        sizes=(4, 8, 16),
        wire_resistances=(0.5, 2.0),
        samples=2,
        rng=np.random.default_rng(0),
    )


class TestSweep:
    def test_grid_covered(self, rows):
        assert len(rows) == 3 * 2
        assert {r.size for r in rows} == {4, 8, 16}

    def test_error_grows_with_size(self, rows):
        for resistance in (0.5, 2.0):
            series = sorted(
                (r.size, r.ir_drop_error)
                for r in rows
                if r.wire_resistance == resistance
            )
            errors = [e for _, e in series]
            assert errors == sorted(errors)

    def test_error_grows_with_resistance(self, rows):
        for size in (4, 8, 16):
            by_r = {
                r.wire_resistance: r.ir_drop_error
                for r in rows
                if r.size == size
            }
            assert by_r[2.0] > by_r[0.5]

    def test_render(self, rows):
        text = render_parasitics(rows)
        assert "ir_drop_rel_err" in text
        assert str(16) in text


class TestBudget:
    def test_budget_selects_largest_within(self, rows):
        generous = max_usable_tile(rows, 0.5)
        assert all(size == 16 for size in generous.values())

    def test_tight_budget_shrinks_tiles(self, rows):
        loose = max_usable_tile(rows, 0.5)
        tight = max_usable_tile(rows, 1e-4)
        for resistance in loose:
            assert tight[resistance] <= loose[resistance]

    def test_validation(self, rows):
        with pytest.raises(ValueError, match="budget"):
            max_usable_tile(rows, 0.0)
