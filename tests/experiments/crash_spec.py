"""A minimal SweepSpec whose trial crashes on demand.

Used by the engine tests to exercise failed-cell isolation; lives in
an importable module (not inside a test function) so process-pool
workers can unpickle and resolve it via its ``module:attr`` reference.
"""

from repro.experiments.engine import SweepSpec

#: ``(size, variation, trial)`` combinations that raise.
CRASH_CELLS = {(8, 0, 1)}


def crashing_trial(solver, size, variation, trial, config, tracer):
    if (size, variation, trial) in CRASH_CELLS:
        raise RuntimeError(f"planted crash in cell {(size, variation, trial)}")
    tracer.count("sweep.trials")
    return {"value": size * 1000 + variation * 10 + trial}


def aggregate(solver, size, variation, config, payloads):
    return {
        "size": size,
        "variation": variation,
        "values": [None if p is None else p["value"] for p in payloads],
    }


def render(rows):
    return "\n".join(str(row) for row in rows)


SPEC = SweepSpec(
    name="crash-test",
    trial=crashing_trial,
    aggregate=aggregate,
    render=render,
)
