"""Tests for the one-call reproduction driver."""

import json

import pytest

from repro.experiments import SweepConfig, reproduce_all

TINY = SweepConfig(sizes=(8,), variations=(0,), trials=1)


class TestReproduceAll:
    def test_selected_subset_writes_artifacts(self, tmp_path):
        artifacts = reproduce_all(
            tmp_path, TINY, experiments=("fig5a", "parasitics")
        )
        names = [a.name for a in artifacts]
        assert names == ["fig5a", "parasitics"]
        for artifact in artifacts:
            assert artifact.table_path.exists()
            assert artifact.csv_path.exists()
            assert artifact.json_path.exists()
            assert artifact.rows

    def test_json_is_machine_readable(self, tmp_path):
        (artifact,) = reproduce_all(
            tmp_path, TINY, experiments=("fig5b",)
        )
        records = json.loads(artifact.json_path.read_text())
        assert records[0]["solver"] == "large_scale"
        assert records[0]["constraints"] == 8

    def test_table_contains_headers(self, tmp_path):
        (artifact,) = reproduce_all(
            tmp_path, TINY, experiments=("fig6a",)
        )
        text = artifact.table_path.read_text()
        assert "crossbar_ms" in text

    def test_creates_missing_directory(self, tmp_path):
        target = tmp_path / "deep" / "dir"
        reproduce_all(target, TINY, experiments=("fig5a",))
        assert (target / "fig5a.txt").exists()
