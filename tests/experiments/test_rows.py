"""Tests for experiment row types' derived quantities."""

import pytest

from repro.analysis import SampleStats
from repro.experiments import EnergyRow, InfeasibilityRow, LatencyRow


def stats(mean, count=3):
    return SampleStats(
        count=count, mean=mean, std=0.0, minimum=mean, maximum=mean
    )


EMPTY = SampleStats.from_samples([])


class TestLatencyRow:
    def make(self, crossbar):
        return LatencyRow(
            solver="crossbar",
            constraints=64,
            variation_percent=10,
            solved=3,
            trials=3,
            crossbar=crossbar,
            linprog_s=1.0,
            pdip_matlab_s=2.0,
        )

    def test_speedup(self):
        assert self.make(stats(0.01)).speedup_vs_linprog == (
            pytest.approx(100.0)
        )

    def test_speedup_zero_when_unsolved(self):
        assert self.make(EMPTY).speedup_vs_linprog == 0.0


class TestEnergyRow:
    def make(self, crossbar):
        return EnergyRow(
            solver="crossbar",
            constraints=64,
            variation_percent=10,
            solved=3,
            trials=3,
            crossbar=crossbar,
            linprog_j=10.0,
            pdip_matlab_j=20.0,
        )

    def test_gain(self):
        assert self.make(stats(0.1)).gain_vs_linprog == (
            pytest.approx(100.0)
        )

    def test_gain_zero_when_unsolved(self):
        assert self.make(EMPTY).gain_vs_linprog == 0.0


class TestInfeasibilityRow:
    def make(self, detected, trials=10, latency=EMPTY):
        return InfeasibilityRow(
            solver="crossbar",
            constraints=64,
            variation_percent=0,
            trials=trials,
            detected=detected,
            iterations=EMPTY,
            latency=latency,
            linprog_s=5.0,
        )

    def test_detection_rate(self):
        assert self.make(8).detection_rate == pytest.approx(0.8)

    def test_detection_rate_empty_trials(self):
        assert self.make(0, trials=0).detection_rate == 0.0

    def test_speedup(self):
        row = self.make(10, latency=stats(0.05))
        assert row.speedup_vs_linprog == pytest.approx(100.0)

    def test_speedup_zero_without_latency_samples(self):
        assert self.make(10).speedup_vs_linprog == 0.0
