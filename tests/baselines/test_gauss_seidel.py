"""Tests for the iterative linear-solver baselines."""

import numpy as np
import pytest

from repro.baselines import gauss_seidel, jacobi


def diagonally_dominant(rng, n=12):
    A = rng.uniform(-1, 1, size=(n, n))
    A += np.diag(np.abs(A).sum(axis=1) + 1.0)
    b = rng.uniform(-1, 1, size=n)
    return A, b


class TestJacobi:
    def test_converges_on_dominant_system(self, rng):
        A, b = diagonally_dominant(rng)
        result = jacobi(A, b)
        assert result.converged
        np.testing.assert_allclose(
            result.x, np.linalg.solve(A, b), rtol=1e-7
        )

    def test_reports_sweeps(self, rng):
        A, b = diagonally_dominant(rng)
        result = jacobi(A, b)
        assert result.sweeps > 0
        assert result.residual_norm <= 1e-10

    def test_divergence_flagged(self, rng):
        # Off-diagonally dominant: Jacobi diverges.
        A = np.array([[1.0, 10.0], [10.0, 1.0]])
        b = np.ones(2)
        result = jacobi(A, b, max_sweeps=200)
        assert not result.converged

    def test_warm_start(self, rng):
        A, b = diagonally_dominant(rng)
        exact = np.linalg.solve(A, b)
        cold = jacobi(A, b)
        warm = jacobi(A, b, x0=exact)
        assert warm.sweeps <= cold.sweeps

    def test_validation(self):
        with pytest.raises(ValueError, match="square"):
            jacobi(np.ones((2, 3)), np.ones(2))
        with pytest.raises(ValueError, match="shape"):
            jacobi(np.eye(3), np.ones(2))
        with pytest.raises(ValueError, match="diagonal"):
            jacobi(np.array([[0.0, 1.0], [1.0, 0.0]]), np.ones(2))


class TestGaussSeidel:
    def test_converges_on_dominant_system(self, rng):
        A, b = diagonally_dominant(rng)
        result = gauss_seidel(A, b)
        assert result.converged
        np.testing.assert_allclose(
            result.x, np.linalg.solve(A, b), rtol=1e-7
        )

    def test_faster_than_jacobi(self, rng):
        # Classic result: GS needs no more sweeps than Jacobi on
        # diagonally dominant systems.
        A, b = diagonally_dominant(rng)
        assert gauss_seidel(A, b).sweeps <= jacobi(A, b).sweeps

    def test_sor_relaxation(self, rng):
        A, b = diagonally_dominant(rng)
        plain = gauss_seidel(A, b)
        relaxed = gauss_seidel(A, b, relaxation=1.1)
        assert relaxed.converged
        np.testing.assert_allclose(relaxed.x, plain.x, rtol=1e-6)

    @pytest.mark.parametrize("omega", [0.0, 2.0, -0.5])
    def test_rejects_bad_relaxation(self, omega, rng):
        A, b = diagonally_dominant(rng)
        with pytest.raises(ValueError, match="relaxation"):
            gauss_seidel(A, b, relaxation=omega)

    def test_sweep_cap(self, rng):
        A, b = diagonally_dominant(rng)
        result = gauss_seidel(A, b, max_sweeps=1, tolerance=1e-14)
        assert result.sweeps == 1
        assert not result.converged
