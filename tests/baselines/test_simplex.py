"""Tests for the revised simplex baseline."""

import numpy as np
import pytest

from repro.baselines import solve_scipy, solve_simplex
from repro.core import LinearProgram, SolveStatus
from repro.workloads import random_feasible_lp, random_infeasible_lp


class TestOptimality:
    def test_tiny_lp_exact(self, tiny_lp):
        result = solve_simplex(tiny_lp)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(12.0)
        np.testing.assert_allclose(result.x, [4.0, 0.0], atol=1e-9)

    def test_matches_scipy_on_random_batch(self, rng):
        for _ in range(8):
            problem = random_feasible_lp(14, rng=rng)
            ours = solve_simplex(problem)
            truth = solve_scipy(problem)
            assert ours.status is SolveStatus.OPTIMAL
            assert ours.objective == pytest.approx(
                truth.objective, rel=1e-7
            )

    def test_solution_vertex_feasible(self, small_feasible):
        result = solve_simplex(small_feasible)
        assert small_feasible.is_feasible(result.x, tolerance=1e-7)

    def test_duals_certify_optimality(self, small_feasible):
        result = solve_simplex(small_feasible)
        # Dual feasibility: A'y >= c (within numerical slack).
        assert np.all(
            small_feasible.A.T @ result.y
            >= small_feasible.c - 1e-7
        )
        # Strong duality.
        assert small_feasible.dual_objective(result.y) == pytest.approx(
            result.objective, rel=1e-6
        )

    def test_negative_b_uses_phase_one(self):
        # x >= 1 encoded as -x <= -1: slack basis infeasible at start.
        problem = LinearProgram(
            c=np.array([-1.0]),
            A=np.array([[-1.0], [1.0]]),
            b=np.array([-1.0, 3.0]),
        )
        result = solve_simplex(problem)
        assert result.status is SolveStatus.OPTIMAL
        assert result.x[0] == pytest.approx(1.0)


class TestEdgeCases:
    def test_detects_infeasibility(self, rng):
        for _ in range(4):
            problem = random_infeasible_lp(12, rng=rng)
            result = solve_simplex(problem)
            assert result.status is SolveStatus.INFEASIBLE

    def test_unbounded_reported(self):
        # max x with only -x <= 0 constraints: unbounded above.
        problem = LinearProgram(
            c=np.array([1.0]),
            A=np.array([[-1.0]]),
            b=np.array([0.0]),
        )
        result = solve_simplex(problem)
        assert result.status is SolveStatus.NUMERICAL_FAILURE
        assert "unbounded" in result.message

    def test_degenerate_lp_terminates(self):
        # Multiple constraints active at the optimum (degenerate).
        problem = LinearProgram(
            c=np.array([1.0, 1.0]),
            A=np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]]),
            b=np.array([1.0, 1.0, 2.0]),
        )
        result = solve_simplex(problem)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(2.0)

    def test_pivot_cap(self, small_feasible):
        result = solve_simplex(small_feasible, max_pivots=1)
        assert result.status in (
            SolveStatus.OPTIMAL,
            SolveStatus.NUMERICAL_FAILURE,
        )
