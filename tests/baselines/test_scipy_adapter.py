"""Tests for the scipy linprog adapter."""

import numpy as np
import pytest

from repro.baselines import solve_scipy, timed_solve_scipy
from repro.core import SolveStatus
from repro.workloads import random_feasible_lp, random_infeasible_lp


class TestSolveScipy:
    def test_tiny_lp(self, tiny_lp):
        result = solve_scipy(tiny_lp)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(12.0)

    def test_slacks_consistent(self, small_feasible):
        result = solve_scipy(small_feasible)
        np.testing.assert_allclose(
            result.w,
            small_feasible.b - small_feasible.A @ result.x,
            atol=1e-9,
        )
        assert np.all(result.w >= -1e-9)

    def test_duals_satisfy_strong_duality(self, small_feasible):
        result = solve_scipy(small_feasible)
        assert small_feasible.dual_objective(result.y) == pytest.approx(
            result.objective, rel=1e-6
        )

    def test_infeasible_mapped(self, small_infeasible):
        result = solve_scipy(small_infeasible)
        assert result.status is SolveStatus.INFEASIBLE

    def test_timed_variant(self, small_feasible):
        result, elapsed = timed_solve_scipy(small_feasible)
        assert result.status is SolveStatus.OPTIMAL
        assert elapsed > 0.0
