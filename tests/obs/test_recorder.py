"""Tests for the flight-recorder ring buffer and its JSONL dumps."""

import json

import pytest

from repro.obs.recorder import (
    FLIGHT_FORMAT,
    FlightRecorder,
    read_flight_jsonl,
)


class TestRing:
    def test_capacity_bounds_retention(self):
        recorder = FlightRecorder(capacity=3)
        for index in range(5):
            recorder.record("job", index=index)
        assert len(recorder) == 3
        assert [event["index"] for event in recorder.events] == [2, 3, 4]

    def test_sequence_numbers_survive_eviction(self):
        recorder = FlightRecorder(capacity=2)
        for _ in range(4):
            recorder.record("job")
        assert [event["seq"] for event in recorder.events] == [2, 3]

    def test_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(max_dumps=-1)


class TestTrip:
    def test_dump_contains_trigger_last(self, tmp_path):
        recorder = FlightRecorder(directory=tmp_path)
        recorder.record("job", job_id="a")
        recorder.record("breaker", member=1)
        path = recorder.trip("breaker_open", member=1)
        assert path is not None and path.exists()
        events = read_flight_jsonl(path)
        assert events[-1]["kind"] == "trip"
        assert events[-1]["reason"] == "breaker_open"
        assert events[-1]["member"] == 1
        assert [event["kind"] for event in events[:-1]] == [
            "job",
            "breaker",
        ]

    def test_header_declares_format_and_reason(self, tmp_path):
        recorder = FlightRecorder(directory=tmp_path)
        path = recorder.trip("job_failed")
        header = json.loads(path.read_text().splitlines()[0])
        assert header["format"] == FLIGHT_FORMAT
        assert header["reason"] == "job_failed"

    def test_no_directory_records_trip_without_dump(self):
        recorder = FlightRecorder()
        assert recorder.trip("job_failed") is None
        assert recorder.trips == 1
        assert recorder.dumps == []
        # The trip event still lands in the ring.
        assert recorder.events[-1]["kind"] == "trip"

    def test_dump_cap_suppresses_fault_storms(self, tmp_path):
        recorder = FlightRecorder(directory=tmp_path, max_dumps=2)
        paths = [recorder.trip(f"r{i}") for i in range(5)]
        assert sum(1 for path in paths if path is not None) == 2
        assert recorder.trips == 5
        assert recorder.suppressed_trips == 3
        assert len(list(tmp_path.glob("flight-*.jsonl"))) == 2

    def test_filenames_slugged_and_ordered(self, tmp_path):
        recorder = FlightRecorder(directory=tmp_path)
        first = recorder.trip("tier change!")
        second = recorder.trip("breaker_open")
        assert first.name == "flight-000-tier-change.jsonl"
        assert second.name == "flight-001-breaker_open.jsonl"

    def test_read_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "not_flight.jsonl"
        path.write_text('{"kind": "meta", "format": "other"}\n')
        with pytest.raises(ValueError, match=FLIGHT_FORMAT):
            read_flight_jsonl(path)
