"""Tests for error budgets and burn-rate gauges."""

import pytest

from repro.obs.slo import ErrorBudget, SLOPolicy, SLOTracker


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestSLOPolicy:
    def test_budget_fraction(self):
        assert SLOPolicy(objective=0.99).budget_fraction == pytest.approx(
            0.01
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            SLOPolicy(objective=1.0)
        with pytest.raises(ValueError):
            SLOPolicy(window_s=0.0)
        with pytest.raises(ValueError):
            SLOPolicy(burn_windows_s=())
        with pytest.raises(ValueError):
            SLOPolicy(window_s=60.0, burn_windows_s=(120.0,))


class TestErrorBudget:
    def policy(self) -> SLOPolicy:
        return SLOPolicy(
            objective=0.9, window_s=100.0, burn_windows_s=(10.0, 50.0)
        )

    def test_no_events_no_burn(self):
        budget = ErrorBudget(self.policy(), clock=FakeClock())
        assert budget.error_rate() == 0.0
        assert budget.burn_rate() == 0.0
        assert budget.budget_remaining() == 1.0

    def test_burn_rate_unity_at_objective_boundary(self):
        clock = FakeClock()
        budget = ErrorBudget(self.policy(), clock=clock)
        # 10% failures == exactly the allowed budget -> burn rate 1.0.
        for index in range(10):
            budget.record(index != 0)
            clock.now += 1.0
        assert budget.burn_rate(10.0) == pytest.approx(1.0)

    def test_all_failures_burn_at_inverse_budget(self):
        clock = FakeClock()
        budget = ErrorBudget(self.policy(), clock=clock)
        for _ in range(5):
            budget.record(False)
        assert budget.burn_rate(10.0) == pytest.approx(10.0)
        assert budget.budget_remaining() == 0.0

    def test_old_events_age_out(self):
        clock = FakeClock()
        budget = ErrorBudget(self.policy(), clock=clock)
        budget.record(False)
        clock.now = 99.0
        assert budget.error_rate() == pytest.approx(1.0)
        clock.now = 101.0
        assert budget.error_rate() == 0.0
        assert budget.budget_remaining() == 1.0

    def test_short_window_sees_only_recent(self):
        clock = FakeClock()
        budget = ErrorBudget(self.policy(), clock=clock)
        budget.record(False)  # t=0: outside the 10 s window later
        clock.now = 50.0
        budget.record(True)
        budget.record(True)
        assert budget.error_rate(10.0) == 0.0
        assert budget.error_rate(100.0) == pytest.approx(1 / 3)

    def test_burn_rates_cover_all_policy_windows(self):
        budget = ErrorBudget(self.policy(), clock=FakeClock())
        budget.record(True)
        assert set(budget.burn_rates()) == {10.0, 50.0}


class TestSLOTracker:
    def test_deadline_miss_burns_only_deadline_budget(self):
        clock = FakeClock()
        tracker = SLOTracker(clock=clock)
        tracker.record(success=True, deadline_missed=True)
        assert tracker.availability.bad_total == 0
        assert tracker.deadline.bad_total == 1

    def test_failure_burns_availability(self):
        tracker = SLOTracker(clock=FakeClock())
        tracker.record(success=False)
        assert tracker.availability.bad_total == 1
        assert tracker.deadline.bad_total == 0

    def test_gauges_flat_names(self):
        tracker = SLOTracker(clock=FakeClock())
        tracker.record(success=True)
        gauges = tracker.gauges()
        assert "slo.availability.burn.60s" in gauges
        assert "slo.availability.budget_remaining" in gauges
        assert "slo.deadline.burn.600s" in gauges
        assert gauges["slo.availability.budget_remaining"] == 1.0

    def test_describe_is_compact(self):
        tracker = SLOTracker(clock=FakeClock())
        tracker.record(success=False)
        fragment = tracker.describe()
        assert fragment.startswith("burn ")
        assert "avail" in fragment and "deadl" in fragment
