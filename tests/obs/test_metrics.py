"""Tests for streaming histograms, windows, and the metrics registry."""

import math

import pytest

from repro.obs.metrics import (
    DEFAULT_SCHEME,
    BucketScheme,
    MetricsRegistry,
    StreamingHistogram,
    WindowedHistogram,
    exact_quantile,
    label_key,
)


class TestExactQuantile:
    def test_empty_is_zero(self):
        assert exact_quantile([], 0.5) == 0.0

    def test_endpoints_are_min_and_max(self):
        values = [5.0, 1.0, 3.0]
        assert exact_quantile(values, 0.0) == 1.0
        assert exact_quantile(values, 1.0) == 5.0

    def test_median_interpolates(self):
        assert exact_quantile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5

    def test_matches_numpy_linear(self):
        np = pytest.importorskip("numpy")
        rng = np.random.default_rng(0)
        values = rng.lognormal(size=101).tolist()
        for q in (0.0, 0.25, 0.5, 0.95, 0.99, 1.0):
            assert exact_quantile(values, q) == pytest.approx(
                float(np.quantile(values, q))
            )

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            exact_quantile([1.0], 1.5)


class TestBucketScheme:
    def test_default_error_bound(self):
        assert DEFAULT_SCHEME.relative_error == pytest.approx(
            10 ** (1 / 20) - 1
        )

    def test_under_and_overflow_indices(self):
        scheme = BucketScheme(lo=1e-3, hi=1e3, buckets_per_decade=10)
        assert scheme.index(0.0) == 0
        assert scheme.index(-5.0) == 0
        assert scheme.index(1e9) == scheme.n_buckets + 1

    def test_every_value_lands_inside_its_bounds(self):
        scheme = BucketScheme(lo=1e-3, hi=1e3, buckets_per_decade=7)
        for value in (1e-3, 0.02, 0.5, 1.0, 37.0, 999.0):
            index = scheme.index(value)
            lower, upper = scheme.bounds(index)
            assert lower <= value < upper

    def test_roundtrip(self):
        scheme = BucketScheme(lo=1e-6, hi=1e6, buckets_per_decade=5)
        assert BucketScheme.from_dict(scheme.to_dict()) == scheme

    def test_validation(self):
        with pytest.raises(ValueError):
            BucketScheme(lo=1.0, hi=0.5)
        with pytest.raises(ValueError):
            BucketScheme(buckets_per_decade=0)


class TestStreamingHistogram:
    def test_exact_aggregates(self):
        hist = StreamingHistogram()
        for value in (0.5, 1.5, 2.5):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == pytest.approx(4.5)
        assert hist.min_value == 0.5
        assert hist.max_value == 2.5
        assert hist.mean == pytest.approx(1.5)

    def test_quantile_within_documented_error(self):
        import random

        rng = random.Random(7)
        values = [rng.lognormvariate(0.0, 1.5) for _ in range(2000)]
        hist = StreamingHistogram()
        for value in values:
            hist.observe(value)
        for q in (0.5, 0.9, 0.95, 0.99):
            truth = exact_quantile(values, q)
            estimate = hist.quantile(q)
            assert abs(estimate - truth) <= (
                DEFAULT_SCHEME.relative_error * truth + 1e-12
            )

    def test_quantile_clamped_to_observed_range(self):
        hist = StreamingHistogram()
        hist.observe(0.013)
        assert hist.quantile(0.0) == 0.013
        assert hist.quantile(1.0) == 0.013

    def test_empty_quantile_is_zero(self):
        assert StreamingHistogram().quantile(0.99) == 0.0

    def test_merge_equals_combined_observation(self):
        first, second, combined = (
            StreamingHistogram(),
            StreamingHistogram(),
            StreamingHistogram(),
        )
        for value in (0.1, 0.4, 2.0):
            first.observe(value)
            combined.observe(value)
        for value in (5.0, 0.02):
            second.observe(value)
            combined.observe(value)
        assert first.merge(second) == combined

    def test_merge_rejects_scheme_mismatch(self):
        other = StreamingHistogram(BucketScheme(buckets_per_decade=5))
        with pytest.raises(ValueError, match="scheme"):
            StreamingHistogram().merge(other)

    def test_cumulative_buckets_end_at_inf_with_count(self):
        hist = StreamingHistogram()
        for value in (0.001, 10.0, 1e12):  # includes overflow
            hist.observe(value)
        buckets = hist.cumulative_buckets()
        assert math.isinf(buckets[-1][0])
        assert buckets[-1][1] == 3
        counts = [count for _, count in buckets]
        assert counts == sorted(counts)

    def test_serialization_roundtrip(self):
        hist = StreamingHistogram()
        for value in (0.25, 0.5, 123.0):
            hist.observe(value)
        assert StreamingHistogram.from_dict(hist.to_dict()) == hist


class TestWindowedHistogram:
    def test_old_slices_fall_out(self):
        t = {"now": 0.0}
        window = WindowedHistogram(
            window_s=6.0, slices=3, clock=lambda: t["now"]
        )
        window.observe(1.0)
        t["now"] = 1.0
        assert window.snapshot().count == 1
        t["now"] = 100.0  # far past the window
        assert window.snapshot().count == 0

    def test_snapshot_merges_live_slices(self):
        t = {"now": 0.0}
        window = WindowedHistogram(
            window_s=6.0, slices=3, clock=lambda: t["now"]
        )
        for step in range(3):
            t["now"] = step * 2.0
            window.observe(float(step + 1))
        snap = window.snapshot()
        assert snap.count == 3
        assert snap.total == pytest.approx(6.0)


class TestMetricsRegistry:
    def test_label_key_is_canonical(self):
        assert label_key({"b": "2", "a": "1"}) == (("a", "1"), ("b", "2"))
        assert label_key(None) == ()

    def test_counters_accumulate_per_label_set(self):
        registry = MetricsRegistry()
        registry.inc("jobs", labels={"priority": "1"})
        registry.inc("jobs", 2.0, labels={"priority": "1"})
        registry.inc("jobs", labels={"priority": "2"})
        assert registry.counter_value(
            "jobs", labels={"priority": "1"}
        ) == 3.0
        assert registry.counter_value(
            "jobs", labels={"priority": "2"}
        ) == 1.0
        assert registry.counter_value("jobs") == 0.0

    def test_gauges_overwrite(self):
        registry = MetricsRegistry()
        registry.set_gauge("depth", 5.0)
        registry.set_gauge("depth", 2.0)
        assert registry.gauge_value("depth") == 2.0

    def test_observe_feeds_cumulative_and_window(self):
        t = {"now": 0.0}
        registry = MetricsRegistry(
            window_s=6.0, slices=3, clock=lambda: t["now"]
        )
        registry.observe("latency", 0.5)
        t["now"] = 100.0
        registry.observe("latency", 1.5)
        series = registry.histogram("latency")
        assert series.cumulative.count == 2
        assert series.window.snapshot().count == 1  # old slice evicted

    def test_iteration_is_sorted(self):
        registry = MetricsRegistry()
        registry.inc("b")
        registry.inc("a")
        assert [name for name, _, _ in registry.counters()] == ["a", "b"]
