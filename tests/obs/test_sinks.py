"""Tests for the JSONL and Prometheus trace sinks."""

import json

import pytest

from repro.obs import (
    RecordingTracer,
    read_trace_jsonl,
    render_metrics,
    write_metrics_textfile,
    write_trace_jsonl,
)
from repro.obs.sinks import TRACE_FORMAT, metric_name


@pytest.fixture
def tracer():
    tracer = RecordingTracer()
    with tracer.span("solve", solver="crossbar"):
        with tracer.span("iteration", index=0):
            tracer.count("analog.multiplies")
            tracer.count("analog.multiplies")
        tracer.gauge("solver.iterations", 1.0)
    return tracer


class TestJsonl:
    def test_roundtrip_preserves_events(self, tracer, tmp_path):
        path = write_trace_jsonl(tracer, tmp_path / "trace.jsonl")
        events = read_trace_jsonl(path)
        assert events == tracer.event_dicts()

    def test_header_declares_format_and_count(self, tracer, tmp_path):
        path = write_trace_jsonl(tracer, tmp_path / "trace.jsonl")
        header = json.loads(path.read_text().splitlines()[0])
        assert header["format"] == TRACE_FORMAT
        assert header["events"] == len(tracer.events)

    def test_rejects_headerless_file(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"kind": "span"}\n')
        with pytest.raises(ValueError, match="repro-trace"):
            read_trace_jsonl(path)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="repro-trace"):
            read_trace_jsonl(path)


class TestMetrics:
    def test_metric_name_sanitized(self):
        assert metric_name("analog.multiplies", "_total") == (
            "repro_analog_multiplies_total"
        )
        assert metric_name("a b-c") == "repro_a_b_c"

    def test_counters_and_gauges_rendered(self, tracer):
        body = render_metrics(tracer)
        assert "repro_analog_multiplies_total 2" in body
        assert "repro_solver_iterations 1" in body
        assert "# TYPE repro_analog_multiplies_total counter" in body
        assert "# TYPE repro_solver_iterations gauge" in body

    def test_span_series_have_labels(self, tracer):
        body = render_metrics(tracer)
        assert 'repro_span_calls_total{span="iteration"} 1' in body
        assert 'repro_span_seconds_total{span="solve"}' in body

    def test_textfile_syntax(self, tracer, tmp_path):
        path = write_metrics_textfile(tracer, tmp_path / "m.prom")
        for line in path.read_text().splitlines():
            assert line, "no blank lines in textfile-collector format"
            if line.startswith("#"):
                assert line.split()[1] in ("HELP", "TYPE")
            else:
                name, value = line.rsplit(" ", 1)
                assert name
                float(value)  # every sample parses as a number

    def test_empty_tracer_renders(self, tmp_path):
        body = render_metrics(RecordingTracer())
        assert body == "\n"
