"""Tests for the JSONL and Prometheus trace sinks."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    RecordingTracer,
    StreamingHistogram,
    read_trace_jsonl,
    render_metrics,
    write_metrics_textfile,
    write_trace_jsonl,
)
from repro.obs.sinks import (
    TRACE_FORMAT,
    label_name,
    metric_name,
    render_histogram,
    render_registry,
)


@pytest.fixture
def tracer():
    tracer = RecordingTracer()
    with tracer.span("solve", solver="crossbar"):
        with tracer.span("iteration", index=0):
            tracer.count("analog.multiplies")
            tracer.count("analog.multiplies")
        tracer.gauge("solver.iterations", 1.0)
    return tracer


class TestJsonl:
    def test_roundtrip_preserves_events(self, tracer, tmp_path):
        path = write_trace_jsonl(tracer, tmp_path / "trace.jsonl")
        events = read_trace_jsonl(path)
        assert events == tracer.event_dicts()

    def test_header_declares_format_and_count(self, tracer, tmp_path):
        path = write_trace_jsonl(tracer, tmp_path / "trace.jsonl")
        header = json.loads(path.read_text().splitlines()[0])
        assert header["format"] == TRACE_FORMAT
        assert header["events"] == len(tracer.events)

    def test_rejects_headerless_file(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"kind": "span"}\n')
        with pytest.raises(ValueError, match="repro-trace"):
            read_trace_jsonl(path)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="repro-trace"):
            read_trace_jsonl(path)


class TestMetricName:
    """Regression coverage: every Prometheus-illegal character class."""

    def test_dots_become_underscores(self):
        assert metric_name("analog.multiplies", "_total") == (
            "repro_analog_multiplies_total"
        )

    def test_dashes_and_spaces(self):
        assert metric_name("a b-c") == "repro_a_b_c"
        assert metric_name("queue-wait-s") == "repro_queue_wait_s"

    def test_slashes_and_unicode_collapse_to_one_underscore(self):
        assert metric_name("jobs/sec") == "repro_jobs_sec"
        assert metric_name("a/—/b") == "repro_a_b"

    def test_runs_of_illegal_chars_collapse(self):
        assert metric_name("a..b--c  d") == "repro_a_b_c_d"

    def test_leading_digit_guarded_when_prefix_empty(self):
        assert metric_name("0errors", prefix="") == "_0errors"
        assert metric_name("errors", prefix="") == "errors"

    def test_empty_name_still_legal(self):
        assert metric_name("", prefix="") == "_"

    def test_colons_preserved(self):
        assert metric_name("ns:metric") == "repro_ns:metric"

    def test_result_is_always_legal(self):
        import re

        legal = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
        for hostile in ("9-lives", "a/b\\c", "Ω", "..", "le{}=\"x\""):
            assert legal.match(metric_name(hostile)), hostile
            assert legal.match(metric_name(hostile, prefix="")), hostile


class TestLabelName:
    def test_sanitizes_and_guards_digits(self):
        assert label_name("pool.member") == "pool_member"
        assert label_name("0th") == "_0th"

    def test_no_colons_in_label_names(self):
        assert label_name("a:b") == "a_b"


class TestHistogramRendering:
    def test_bucket_sum_count_lines(self):
        hist = StreamingHistogram()
        for value in (0.001, 0.002, 0.004, 0.008):
            hist.observe(value)
        lines = render_histogram("service.latency_s", hist)
        assert lines[0].startswith("# HELP repro_service_latency_s")
        assert lines[1] == "# TYPE repro_service_latency_s histogram"
        assert lines[-2].startswith("repro_service_latency_s_sum ")
        assert lines[-1] == "repro_service_latency_s_count 4"
        inf_lines = [ln for ln in lines if 'le="+Inf"' in ln]
        assert len(inf_lines) == 1 and inf_lines[0].endswith(" 4")

    def test_buckets_are_cumulative_nondecreasing(self):
        hist = StreamingHistogram()
        for value in (0.5, 1.0, 2.0, 4.0, 8.0):
            hist.observe(value)
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in render_histogram("m", hist)
            if "_bucket{" in line
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 5

    def test_labels_ride_alongside_le(self):
        hist = StreamingHistogram()
        hist.observe(1.0)
        lines = render_histogram(
            "m", hist, labels={"priority": "2"}
        )
        bucket = next(line for line in lines if "_bucket{" in line)
        assert 'priority="2"' in bucket and 'le="' in bucket
        assert any('repro_m_sum{priority="2"}' in ln for ln in lines)


class TestRegistryRendering:
    def test_labeled_series_and_single_header(self):
        registry = MetricsRegistry()
        registry.inc("service.jobs", labels={"priority": "1"})
        registry.inc("service.jobs", 2.0, labels={"priority": "2"})
        registry.set_gauge("service.queue.depth", 5.0)
        registry.observe("service.latency_s", 0.25)
        registry.observe(
            "service.latency_s", 0.5, labels={"priority": "2"}
        )
        body = render_registry(registry)
        assert 'repro_service_jobs_total{priority="1"} 1' in body
        assert 'repro_service_jobs_total{priority="2"} 2' in body
        assert "repro_service_queue_depth 5" in body
        # One HELP/TYPE header per base name, even across label sets.
        assert body.count("# TYPE repro_service_jobs_total counter") == 1
        assert body.count("# TYPE repro_service_latency_s histogram") == 1
        assert 'repro_service_latency_s_bucket{priority="2",le="' in body

    def test_empty_registry_renders_empty(self):
        assert render_registry(MetricsRegistry()) == ""


class TestMetrics:
    def test_metric_name_sanitized(self):
        assert metric_name("analog.multiplies", "_total") == (
            "repro_analog_multiplies_total"
        )
        assert metric_name("a b-c") == "repro_a_b_c"

    def test_counters_and_gauges_rendered(self, tracer):
        body = render_metrics(tracer)
        assert "repro_analog_multiplies_total 2" in body
        assert "repro_solver_iterations 1" in body
        assert "# TYPE repro_analog_multiplies_total counter" in body
        assert "# TYPE repro_solver_iterations gauge" in body

    def test_span_series_have_labels(self, tracer):
        body = render_metrics(tracer)
        assert 'repro_span_calls_total{span="iteration"} 1' in body
        assert 'repro_span_seconds_total{span="solve"}' in body

    def test_textfile_syntax(self, tracer, tmp_path):
        path = write_metrics_textfile(tracer, tmp_path / "m.prom")
        for line in path.read_text().splitlines():
            assert line, "no blank lines in textfile-collector format"
            if line.startswith("#"):
                assert line.split()[1] in ("HELP", "TYPE")
            else:
                name, value = line.rsplit(" ", 1)
                assert name
                float(value)  # every sample parses as a number

    def test_empty_tracer_renders(self, tmp_path):
        body = render_metrics(RecordingTracer())
        assert body == "\n"

    def test_tracer_histograms_rendered(self):
        tracer = RecordingTracer()
        tracer.observe("service.latency_s", 0.01)
        tracer.observe("service.latency_s", 0.02)
        body = render_metrics(tracer)
        assert "# TYPE repro_service_latency_s histogram" in body
        assert "repro_service_latency_s_count 2" in body

    def test_registry_appended_after_tracer_metrics(self, tmp_path):
        tracer = RecordingTracer()
        tracer.count("analog.multiplies")
        registry = MetricsRegistry()
        registry.inc("service.jobs", labels={"priority": "1"})
        path = write_metrics_textfile(
            tracer, tmp_path / "m.prom", registry=registry
        )
        body = path.read_text()
        assert "repro_analog_multiplies_total 1" in body
        assert 'repro_service_jobs_total{priority="1"} 1' in body
