"""Tests for splicing worker event streams into a parent tracer."""

import pytest

from repro.obs.merge import absorb_events
from repro.obs.tracer import RecordingTracer, SpanEvent


def worker_events():
    worker = RecordingTracer()
    with worker.span("cell", index=3):
        with worker.span("program"):
            worker.count("crossbar.cells_written", 40.0)
        worker.gauge("solver.iterations", 7)
    return worker.event_dicts()


class TestAbsorbEvents:
    def test_empty_stream_absorbs_nothing(self):
        parent = RecordingTracer()
        assert absorb_events(parent, []) == 0
        assert parent.events == []
        assert parent.counters == {}
        assert parent.gauges == {}

    def test_empty_stream_leaves_open_span_intact(self):
        parent = RecordingTracer()
        with parent.span("batch"):
            assert absorb_events(parent, []) == 0
        spans = [e for e in parent.events if isinstance(e, SpanEvent)]
        assert [s.name for s in spans] == ["batch"]

    def test_counters_fold_into_parent_without_priors(self):
        # The parent has never seen these counter names: folding must
        # create them, not KeyError on the missing aggregate.
        parent = RecordingTracer()
        absorbed = absorb_events(parent, worker_events())
        assert absorbed == 4
        assert parent.counters["crossbar.cells_written"] == 40.0
        assert parent.gauges["solver.iterations"] == 7

    def test_counters_add_to_existing_aggregates(self):
        parent = RecordingTracer()
        parent.count("crossbar.cells_written", 10.0)
        absorb_events(parent, worker_events())
        absorb_events(parent, worker_events())
        assert parent.counters["crossbar.cells_written"] == 90.0

    def test_root_spans_reparent_onto_open_span(self):
        parent = RecordingTracer()
        with parent.span("batch"):
            absorb_events(parent, worker_events())
        spans = {e.name: e for e in parent.events if isinstance(e, SpanEvent)}
        batch = spans["batch"]
        assert spans["cell"].parent_id == batch.span_id
        assert spans["program"].parent_id == spans["cell"].span_id

    def test_root_attrs_only_on_root_spans(self):
        parent = RecordingTracer()
        absorb_events(parent, worker_events(), root_attrs={"worker": 9})
        spans = {e.name: e for e in parent.events if isinstance(e, SpanEvent)}
        assert spans["cell"].attrs["worker"] == 9
        assert spans["cell"].attrs["index"] == 3
        assert "worker" not in spans["program"].attrs

    def test_absorbed_ids_do_not_collide(self):
        parent = RecordingTracer()
        with parent.span("first"):
            pass
        absorb_events(parent, worker_events())
        ids = [e.span_id for e in parent.events if isinstance(e, SpanEvent)]
        assert len(ids) == len(set(ids))

    def test_unknown_kind_rejected(self):
        parent = RecordingTracer()
        with pytest.raises(ValueError, match="kind"):
            absorb_events(parent, [{"kind": "trace"}])
