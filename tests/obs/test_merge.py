"""Tests for splicing worker event streams into a parent tracer."""

import pytest

from repro.obs.merge import absorb_events
from repro.obs.metrics import StreamingHistogram
from repro.obs.tracer import HistEvent, RecordingTracer, SpanEvent


def worker_events():
    worker = RecordingTracer()
    with worker.span("cell", index=3):
        with worker.span("program"):
            worker.count("crossbar.cells_written", 40.0)
        worker.gauge("solver.iterations", 7)
    return worker.event_dicts()


class TestAbsorbEvents:
    def test_empty_stream_absorbs_nothing(self):
        parent = RecordingTracer()
        assert absorb_events(parent, []) == 0
        assert parent.events == []
        assert parent.counters == {}
        assert parent.gauges == {}

    def test_empty_stream_leaves_open_span_intact(self):
        parent = RecordingTracer()
        with parent.span("batch"):
            assert absorb_events(parent, []) == 0
        spans = [e for e in parent.events if isinstance(e, SpanEvent)]
        assert [s.name for s in spans] == ["batch"]

    def test_counters_fold_into_parent_without_priors(self):
        # The parent has never seen these counter names: folding must
        # create them, not KeyError on the missing aggregate.
        parent = RecordingTracer()
        absorbed = absorb_events(parent, worker_events())
        assert absorbed == 4
        assert parent.counters["crossbar.cells_written"] == 40.0
        assert parent.gauges["solver.iterations"] == 7

    def test_counters_add_to_existing_aggregates(self):
        parent = RecordingTracer()
        parent.count("crossbar.cells_written", 10.0)
        absorb_events(parent, worker_events())
        absorb_events(parent, worker_events())
        assert parent.counters["crossbar.cells_written"] == 90.0

    def test_root_spans_reparent_onto_open_span(self):
        parent = RecordingTracer()
        with parent.span("batch"):
            absorb_events(parent, worker_events())
        spans = {e.name: e for e in parent.events if isinstance(e, SpanEvent)}
        batch = spans["batch"]
        assert spans["cell"].parent_id == batch.span_id
        assert spans["program"].parent_id == spans["cell"].span_id

    def test_root_attrs_only_on_root_spans(self):
        parent = RecordingTracer()
        absorb_events(parent, worker_events(), root_attrs={"worker": 9})
        spans = {e.name: e for e in parent.events if isinstance(e, SpanEvent)}
        assert spans["cell"].attrs["worker"] == 9
        assert spans["cell"].attrs["index"] == 3
        assert "worker" not in spans["program"].attrs

    def test_absorbed_ids_do_not_collide(self):
        parent = RecordingTracer()
        with parent.span("first"):
            pass
        absorb_events(parent, worker_events())
        ids = [e.span_id for e in parent.events if isinstance(e, SpanEvent)]
        assert len(ids) == len(set(ids))

    def test_unknown_kind_rejected(self):
        parent = RecordingTracer()
        with pytest.raises(ValueError, match="kind"):
            absorb_events(parent, [{"kind": "trace"}])


def worker_stream(values, gauge_value):
    """One worker's events: latency observations plus a final gauge."""
    worker = RecordingTracer()
    with worker.span("job"):
        for value in values:
            worker.observe("service.latency_s", value)
        worker.gauge("service.queue.depth", gauge_value)
    return worker.event_dicts()


class TestMultiWorkerFolding:
    """Satellite: gauge and histogram folding across worker streams."""

    def test_gauges_are_last_write_wins(self):
        parent = RecordingTracer()
        absorb_events(parent, worker_stream([0.01], gauge_value=5))
        absorb_events(parent, worker_stream([0.02], gauge_value=2))
        assert parent.gauges["service.queue.depth"] == 2

    def test_histograms_fold_by_bucket_addition(self):
        # Replaying both workers' observations into the parent must
        # equal the workers' own histograms merged bucket-wise.
        first_values = [0.001, 0.004, 0.02]
        second_values = [0.008, 0.5, 3.0, 0.002]
        parent = RecordingTracer()
        absorb_events(parent, worker_stream(first_values, gauge_value=1))
        absorb_events(parent, worker_stream(second_values, gauge_value=1))

        expected = StreamingHistogram()
        by_hand = StreamingHistogram()
        for value in first_values + second_values:
            expected.observe(value)
        for values in (first_values, second_values):
            one = StreamingHistogram()
            for value in values:
                one.observe(value)
            by_hand.merge(one)
        folded = parent.histograms["service.latency_s"]
        assert folded == expected
        assert folded == by_hand
        assert folded.count == len(first_values) + len(second_values)

    def test_hist_events_reparent_like_counters(self):
        parent = RecordingTracer()
        with parent.span("batch"):
            absorb_events(parent, worker_stream([0.01, 0.02], 1))
        spans = {
            e.name: e for e in parent.events if isinstance(e, SpanEvent)
        }
        hist_events = [
            e for e in parent.events if isinstance(e, HistEvent)
        ]
        assert len(hist_events) == 2
        # Observations recorded inside the worker's "job" span carry
        # the remapped id of that span, not the worker's original.
        assert {e.span_id for e in hist_events} == {
            spans["job"].span_id
        }
        assert spans["job"].parent_id == spans["batch"].span_id

    def test_rootless_hist_events_attach_to_open_span(self):
        worker = RecordingTracer()
        worker.observe("service.latency_s", 0.05)  # outside any span
        parent = RecordingTracer()
        with parent.span("batch"):
            absorb_events(parent, worker.event_dicts())
        batch = next(
            e for e in parent.events if isinstance(e, SpanEvent)
        )
        hist_event = next(
            e for e in parent.events if isinstance(e, HistEvent)
        )
        assert hist_event.span_id == batch.span_id
        assert parent.histograms["service.latency_s"].count == 1
