"""Tests for the span/counter/gauge tracer."""

from repro.obs import NOOP, RecordingTracer, Stopwatch, Tracer, monotonic
from repro.obs.tracer import _NULL_SPAN


class TestClock:
    def test_monotonic_advances(self):
        a = monotonic()
        b = monotonic()
        assert b >= a

    def test_stopwatch_measures_and_freezes(self):
        with Stopwatch() as clock:
            mid = clock.elapsed_seconds
            assert mid >= 0.0
        final = clock.elapsed_seconds
        assert final >= mid
        # After exit the reading is frozen.
        assert clock.elapsed_seconds == final


class TestNoopTracer:
    def test_noop_is_disabled(self):
        assert NOOP.enabled is False
        assert isinstance(NOOP, Tracer)

    def test_span_returns_shared_null_handle(self):
        with NOOP.span("anything", key=1) as span:
            span.set(more=2)
        assert NOOP.span("x") is _NULL_SPAN
        assert NOOP.span("y") is NOOP.span("z")

    def test_count_and_gauge_are_silent(self):
        NOOP.count("c")
        NOOP.count("c", 5.0)
        NOOP.gauge("g", 3.0)
        assert not hasattr(NOOP, "events")


class TestRecordingTracer:
    def test_enabled(self):
        assert RecordingTracer().enabled is True

    def test_span_records_name_duration_and_attrs(self):
        tracer = RecordingTracer()
        with tracer.span("outer", color="red") as span:
            span.set(status="done")
        (event,) = tracer.events
        assert event.name == "outer"
        assert event.duration_s >= 0.0
        assert event.attrs == {"color": "red", "status": "done"}
        assert event.parent_id is None

    def test_nesting_sets_parent_ids(self):
        tracer = RecordingTracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        # Spans close inner-first.
        inner_event, outer_event = tracer.events
        assert inner_event.name == "inner"
        assert inner_event.parent_id == outer.span_id
        assert outer_event.parent_id is None
        assert inner.span_id != outer.span_id

    def test_siblings_share_parent(self):
        tracer = RecordingTracer()
        with tracer.span("outer") as outer:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, _ = tracer.events
        assert a.parent_id == b.parent_id == outer.span_id

    def test_counters_accumulate(self):
        tracer = RecordingTracer()
        tracer.count("hits")
        tracer.count("hits", 2.5)
        assert tracer.counters == {"hits": 3.5}

    def test_gauges_last_value_wins(self):
        tracer = RecordingTracer()
        tracer.gauge("level", 1.0)
        tracer.gauge("level", 9.0)
        assert tracer.gauges == {"level": 9.0}

    def test_counts_carry_innermost_open_span(self):
        tracer = RecordingTracer()
        tracer.count("outside")
        with tracer.span("work") as span:
            tracer.count("inside")
            tracer.gauge("depth", 1.0)
        outside, inside, depth, _ = tracer.events
        assert outside.span_id is None
        assert inside.span_id == span.span_id
        assert depth.span_id == span.span_id

    def test_event_dicts_tag_kinds(self):
        tracer = RecordingTracer()
        tracer.count("c")
        tracer.gauge("g", 1.0)
        with tracer.span("s"):
            pass
        kinds = [event["kind"] for event in tracer.event_dicts()]
        assert kinds == ["count", "gauge", "span"]

    def test_span_exits_on_exception(self):
        tracer = RecordingTracer()
        try:
            with tracer.span("fails"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        (event,) = tracer.events
        assert event.name == "fails"
        assert tracer._stack == []
