"""End-to-end reliability: faulted arrays through the recovery ladder.

Two guarantees are locked in here:

1. ``solve()`` never raises out of either crossbar solver, at any
   stuck-at fault rate — failures come back as classified results;
2. with the full ladder (probe + reprogram + remap + digital fallback)
   every seeded random LP terminates OPTIMAL or INFEASIBLE, and the
   attempt history names the rung that produced the answer.
"""

import numpy as np
import pytest

from repro.core import (
    CrossbarPDIPSolver,
    CrossbarSolverSettings,
    FailureReason,
    LargeScaleCrossbarPDIPSolver,
    ScalableSolverSettings,
    SolveStatus,
)
from repro.devices import UniformVariation, YAKOPCIC_NAECON14
from repro.devices.faults import StuckAtFaults
from repro.reliability import ProbePolicy, RecoveryPolicy
from repro.workloads import random_feasible_lp

CONCLUSIVE = (SolveStatus.OPTIMAL, SolveStatus.INFEASIBLE)


def _faulted(settings_cls, rate, **overrides):
    return settings_cls(
        variation=StuckAtFaults(
            YAKOPCIC_NAECON14,
            stuck_off_rate=rate,
            base=UniformVariation(0.05),
        ),
        retries=1,
        **overrides,
    )


@pytest.mark.parametrize("rate", [0.001, 0.005, 0.02])
@pytest.mark.parametrize(
    "solver_cls,settings_cls",
    [
        (CrossbarPDIPSolver, CrossbarSolverSettings),
        (LargeScaleCrossbarPDIPSolver, ScalableSolverSettings),
    ],
)
def test_faulted_solvers_never_raise(rate, solver_cls, settings_cls):
    """Either the ladder recovers or the failure comes back typed."""
    rng = np.random.default_rng(1234)
    for trial in range(3):
        problem = random_feasible_lp(10, rng=rng)
        solver = solver_cls(
            problem,
            _faulted(settings_cls, rate),
            rng=np.random.default_rng(100 + trial),
            recovery=RecoveryPolicy(
                reprograms=1, remaps=1, probe=ProbePolicy()
            ),
        )
        result = solver.solve()  # must not raise
        assert result.status in SolveStatus
        assert result.attempts  # history always populated
        if result.status in CONCLUSIVE:
            assert result.failure_reason is FailureReason.NONE
        else:
            assert result.failure_reason is not FailureReason.NONE


@pytest.mark.parametrize(
    "solver_cls,settings_cls",
    [
        (CrossbarPDIPSolver, CrossbarSolverSettings),
        (LargeScaleCrossbarPDIPSolver, ScalableSolverSettings),
    ],
)
def test_fallback_guarantees_termination(solver_cls, settings_cls):
    """With a digital fallback the ladder always reaches a verdict."""
    rng = np.random.default_rng(7)
    problem = random_feasible_lp(10, rng=rng)
    solver = solver_cls(
        problem,
        _faulted(settings_cls, 0.05),  # heavy faults: analog will fail
        rng=np.random.default_rng(8),
        recovery=RecoveryPolicy(
            reprograms=0,
            remaps=0,
            probe=ProbePolicy(),
            digital_fallback="reference",
        ),
    )
    result = solver.solve()
    assert result.status in CONCLUSIVE


def test_hundred_random_lps_all_terminate():
    """Acceptance: 100 seeded random LPs at 2% stuck-OFF, full ladder.

    Every run must end OPTIMAL or INFEASIBLE with a non-empty attempt
    history whose last record is the rung that produced the verdict.
    """
    settings = _faulted(
        CrossbarSolverSettings, 0.02, max_iterations=150
    )
    policy = RecoveryPolicy(
        reprograms=1,
        remaps=1,
        probe=ProbePolicy(),
        digital_fallback="scipy",
    )
    problem_rng = np.random.default_rng(2024)
    statuses = []
    for trial in range(100):
        problem = random_feasible_lp(10, rng=problem_rng)
        solver = CrossbarPDIPSolver(
            problem,
            settings,
            rng=np.random.default_rng(5000 + trial),
            recovery=policy,
        )
        result = solver.solve()
        assert result.status in CONCLUSIVE, (
            f"trial {trial}: {result.status} ({result.message})"
        )
        assert result.attempts, f"trial {trial}: empty attempt history"
        producer = result.attempts[-1]
        assert producer.status is result.status
        assert producer.conclusive
        statuses.append(result.status)
    # Sanity on the mix: the generator produces feasible LPs and the
    # fallback solves them exactly, so the bulk must be OPTIMAL.
    assert statuses.count(SolveStatus.OPTIMAL) >= 90
