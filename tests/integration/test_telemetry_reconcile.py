"""Acceptance: live telemetry reconciles against offline span replay.

A 50-job chaos batch is run once with the full telemetry surface
attached.  The contract locked in here:

1. counters reconcile *exactly* — total energy attributed live equals
   both the sum over serialized records and the counter rebuilt from
   the trace by :func:`replay_counters`;
2. latency histograms reconcile *exactly* — replaying the trace's
   ``hist`` events bucket-wise reproduces the registry's cumulative
   histogram (streaming aggregation is a pure fold over observations);
3. histogram quantile estimates sit within the documented
   ``BucketScheme.relative_error`` bound of the exact quantiles
   computed from the records;
4. the chaos storm trips the flight recorder and the dump's trigger
   event is the last line of the recording.
"""

import pytest

from repro.analysis.spans import replay_counters, replay_histograms
from repro.obs import RecordingTracer
from repro.obs.metrics import DEFAULT_SCHEME, exact_quantile
from repro.obs.recorder import read_flight_jsonl
from repro.service import (
    FaultCampaign,
    FaultEvent,
    ServiceConfig,
    ServiceTelemetry,
    SolverService,
    synthesize_jobs,
)

JOBS = 50


@pytest.fixture(scope="module")
def chaos_run(tmp_path_factory):
    flight_dir = tmp_path_factory.mktemp("flights")
    telemetry = ServiceTelemetry(flight_dir=flight_dir)
    tracer = RecordingTracer()
    campaign = FaultCampaign(
        [
            # Non-sticky stuck rows on the member that stays alive:
            # attempts fail, recovery reprograms it back to health, and
            # the fail/heal churn keeps feeding degradation-window
            # samples — the reliable path to a brownout tier change
            # (sticky faults just get the member retired, after which
            # fallback jobs acquire no member and feed no samples).
            FaultEvent(at_job=2, kind="stuck_cells", member=0,
                       row_fraction=0.5),
            FaultEvent(at_job=5, kind="member_death", member=1),
            FaultEvent(at_job=8, kind="drift", member=0,
                       magnitude=0.2),
            FaultEvent(at_job=10, kind="queue_pulse", jobs=3,
                       constraints=9),
        ],
        name="reconcile-storm",
        seed=7,
    )
    config = ServiceConfig(
        pool_size=2,
        base_seed=7,
        digital_fallback="reference",
        campaign=campaign,
    )
    service = SolverService(config, tracer=tracer, telemetry=telemetry)
    specs = synthesize_jobs(JOBS, groups=2, constraints=10)
    records, summary = service.batch(specs)
    return service, telemetry, tracer, records, summary


class TestEnergyReconciles:
    def test_live_total_equals_record_sum_exactly(self, chaos_run):
        _, telemetry, _, records, summary = chaos_run
        record_sum = sum(record.energy_j for record in records)
        assert record_sum > 0
        assert telemetry.energy_j_total == pytest.approx(
            record_sum, rel=1e-12
        )
        assert summary.energy_j == pytest.approx(record_sum, rel=1e-12)

    def test_trace_replay_matches_live_counter(self, chaos_run):
        _, telemetry, tracer, records, _ = chaos_run
        replayed = replay_counters(tracer.event_dicts())
        assert replayed["service.energy_j"] == pytest.approx(
            sum(record.energy_j for record in records), rel=1e-12
        )
        assert replayed["service.jobs_completed"] == len(records)

    def test_every_job_counted(self, chaos_run):
        _, telemetry, _, records, _ = chaos_run
        assert len(records) > JOBS  # queue_pulse added filler jobs
        assert telemetry.jobs == len(records)


class TestLatencyReconciles:
    def test_replayed_histogram_equals_live_exactly(self, chaos_run):
        _, telemetry, tracer, _, _ = chaos_run
        replayed = replay_histograms(tracer.event_dicts())
        live = telemetry.registry.histogram("service.latency_s")
        assert replayed["service.latency_s"] == live.cumulative
        assert (
            replayed["service.latency_s"]
            == tracer.histograms["service.latency_s"]
        )

    def test_quantiles_within_documented_error(self, chaos_run):
        _, telemetry, _, records, _ = chaos_run
        latencies = [
            record.elapsed_seconds
            for record in records
            if record.elapsed_seconds > 0
        ]
        live = telemetry.registry.histogram(
            "service.latency_s"
        ).cumulative
        assert live.count == len(latencies)
        # The histogram guarantee is relative to *order statistics*:
        # the estimate lands within one bucket (relative_error) of an
        # observed value at the requested rank.  exact_quantile()
        # interpolates between neighbouring order statistics, so bound
        # the estimate by the bracketing pair, each widened by the
        # documented bucket error.
        bound = DEFAULT_SCHEME.relative_error
        ordered = sorted(latencies)
        for q in (0.5, 0.99):
            rank = q * (len(ordered) - 1)
            lo = ordered[int(rank)]
            hi = ordered[min(int(rank) + 1, len(ordered) - 1)]
            estimate = live.quantile(q)
            assert lo * (1 - bound) - 1e-12 <= estimate
            assert estimate <= hi * (1 + bound) + 1e-12
            # And interpolated truth stays within the same widened
            # bracket — the reconciliation the issue asks for.
            truth = exact_quantile(latencies, q)
            assert lo <= truth <= hi

    def test_stats_line_shows_nonzero_p99_and_energy(self, chaos_run):
        _, telemetry, _, _, _ = chaos_run
        line = telemetry.stats_line()
        assert "p99=0.0ms" not in line
        assert "energy/job=0J" not in line
        assert "p99=" in line and "energy/job=" in line


class TestFlightRecorderTripped:
    def test_storm_produced_a_dump(self, chaos_run):
        _, telemetry, _, _, _ = chaos_run
        assert telemetry.recorder.trips > 0
        assert telemetry.recorder.dumps

    def test_dump_ends_with_triggering_event(self, chaos_run):
        _, telemetry, _, _, _ = chaos_run
        events = read_flight_jsonl(telemetry.recorder.dumps[0])
        trigger = events[-1]
        assert trigger["kind"] == "trip"
        assert trigger["reason"] in {
            "tier_change",
            "breaker_open",
            "job_failed",
        }
        # The ring context around the trigger includes the chaos event
        # that caused it.
        kinds = {event["kind"] for event in events}
        assert "chaos" in kinds


class TestSLOFed:
    def test_budgets_saw_every_job(self, chaos_run):
        _, telemetry, _, records, _ = chaos_run
        assert telemetry.slo.availability.total == len(records)
        assert (
            telemetry.registry.gauge_value(
                "slo.availability.budget_remaining"
            )
            is not None
        )
