"""Integration tests: full solver stacks on realistic workloads."""

import networkx as nx
import numpy as np
import pytest

from repro.baselines import solve_scipy, solve_simplex
from repro.core import (
    CrossbarSolverSettings,
    ScalableSolverSettings,
    SolveStatus,
    solve_crossbar,
    solve_crossbar_large_scale,
    solve_reference,
)
from repro.costmodel import estimate_energy, estimate_latency
from repro.devices import UniformVariation
from repro.workloads import (
    flow_value,
    machine_scheduling_lp,
    max_flow_lp,
    production_planning_lp,
    random_feasible_lp,
    random_routing_network,
)


class TestAllSolversAgree:
    """Every solver in the package must agree on the same problems."""

    def test_agreement_on_random_lp(self, rng):
        problem = random_feasible_lp(18, rng=rng)
        truth = solve_scipy(problem).objective
        assert solve_reference(problem).objective == pytest.approx(
            truth, rel=1e-5
        )
        assert solve_simplex(problem).objective == pytest.approx(
            truth, rel=1e-7
        )
        xbar = solve_crossbar(problem, rng=np.random.default_rng(0))
        assert xbar.objective == pytest.approx(truth, rel=0.05)
        large = solve_crossbar_large_scale(
            problem, rng=np.random.default_rng(1)
        )
        assert large.objective == pytest.approx(truth, rel=0.05)

    def test_agreement_under_variation(self, rng):
        problem = random_feasible_lp(18, rng=rng)
        truth = solve_scipy(problem).objective
        settings = CrossbarSolverSettings(
            variation=UniformVariation(0.05)
        )
        result = solve_crossbar(
            problem, settings, rng=np.random.default_rng(2)
        )
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(truth, rel=0.12)


class TestRoutingOnCrossbar:
    def test_max_flow_solved_in_analog(self, rng):
        graph = random_routing_network(6, rng=rng)
        problem, edges = max_flow_lp(graph, 0, 5)
        reference = nx.maximum_flow_value(graph, 0, 5)
        result = solve_crossbar(problem, rng=np.random.default_rng(0))
        assert result.status is SolveStatus.OPTIMAL
        assert flow_value(result.x, edges, graph, 0) == pytest.approx(
            reference, rel=0.05
        )


class TestSchedulingOnCrossbar:
    def test_production_planning(self, rng):
        problem = production_planning_lp(6, 4, rng=rng)
        truth = solve_scipy(problem).objective
        result = solve_crossbar(problem, rng=np.random.default_rng(0))
        assert result.objective == pytest.approx(truth, rel=0.05)

    def test_machine_scheduling_large_scale_solver(self, rng):
        problem, _ = machine_scheduling_lp(4, 3, rng=rng)
        truth = solve_scipy(problem).objective
        result = solve_crossbar_large_scale(
            problem, rng=np.random.default_rng(0)
        )
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(truth, rel=0.06)


class TestCostPipeline:
    def test_solve_to_estimates(self, rng):
        settings = CrossbarSolverSettings(
            variation=UniformVariation(0.10)
        )
        problem = random_feasible_lp(24, rng=rng)
        result = solve_crossbar(
            problem, settings, rng=np.random.default_rng(0)
        )
        latency = estimate_latency(result, settings.device)
        energy = estimate_energy(result, settings.device)
        assert 0 < latency.total_s < 1.0
        assert 0 < energy.total_j < 10.0

    def test_solver2_cheaper_arrays_than_solver1(self, rng):
        problem = random_feasible_lp(30, rng=rng)
        s1 = solve_crossbar(problem, rng=np.random.default_rng(0))
        s2 = solve_crossbar_large_scale(
            problem, rng=np.random.default_rng(1)
        )
        assert s2.crossbar.array_size < s1.crossbar.array_size


class TestAccuracyTrendsMatchPaper:
    """Shape checks on the paper's headline claims (small scale)."""

    def test_error_grows_with_variation(self, rng):
        problem = random_feasible_lp(24, rng=rng)
        truth = solve_scipy(problem).objective
        errors = {}
        for percent in (0, 20):
            settings = CrossbarSolverSettings(
                variation=UniformVariation(percent / 100.0)
                if percent
                else CrossbarSolverSettings().variation,
            )
            samples = []
            for seed in range(4):
                result = solve_crossbar(
                    problem,
                    settings,
                    rng=np.random.default_rng(seed),
                )
                if result.status is SolveStatus.OPTIMAL:
                    samples.append(
                        abs(result.objective - truth) / abs(truth)
                    )
            errors[percent] = np.mean(samples)
        assert errors[20] > errors[0]

    def test_solver2_error_within_paper_band(self, rng):
        # Fig. 5(b): 0.8%-8.5% across the sweep.
        settings = ScalableSolverSettings(
            variation=UniformVariation(0.10)
        )
        errors = []
        for seed in range(4):
            problem = random_feasible_lp(24, rng=rng)
            truth = solve_scipy(problem).objective
            result = solve_crossbar_large_scale(
                problem, settings, rng=np.random.default_rng(seed)
            )
            if result.status is SolveStatus.OPTIMAL:
                errors.append(
                    abs(result.objective - truth) / abs(truth)
                )
        assert errors, "no solves succeeded"
        assert np.mean(errors) < 0.10
