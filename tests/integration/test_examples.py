"""Smoke tests: the shipped examples must run end to end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, argv=()):
    old_argv = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "software PDIP" in out
        assert "Solver 2" in out

    def test_large_scale_noc(self, capsys):
        run_example("large_scale_noc.py")
        out = capsys.readouterr().out
        assert "Tiled multiply" in out
        assert "hierarchical" in out

    def test_reproduce_figures_cli(self, capsys):
        run_example(
            "reproduce_figures.py", argv=["fig5a", "--trials", "1"]
        )
        out = capsys.readouterr().out
        assert "fig5a" in out
        assert "mean_rel_err" in out

    @pytest.mark.slow
    def test_routing_network(self, capsys):
        run_example("routing_network.py")
        out = capsys.readouterr().out
        assert "max flow" in out

    @pytest.mark.slow
    def test_production_scheduling(self, capsys):
        run_example("production_scheduling.py")
        out = capsys.readouterr().out
        assert "Product mix" in out
