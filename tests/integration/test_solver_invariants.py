"""Cross-solver invariants on traces, duals, and counters."""

import numpy as np
import pytest

from repro.baselines import solve_scipy
from repro.core import (
    CrossbarPDIPSolver,
    CrossbarSolverSettings,
    LargeScaleCrossbarPDIPSolver,
    SolveStatus,
    solve_reference,
)
from repro.workloads import random_feasible_lp


@pytest.fixture(scope="module")
def problem():
    return random_feasible_lp(18, rng=np.random.default_rng(77))


class TestTraceInvariants:
    def test_reference_gap_strictly_decreases_mostly(self, problem):
        result = solve_reference(problem, trace=True)
        gaps = [record.duality_gap for record in result.trace]
        decreasing = sum(
            1 for a, b in zip(gaps, gaps[1:]) if b < a
        )
        assert decreasing >= 0.9 * (len(gaps) - 1)

    def test_crossbar_trace_thetas_within_bounds(self, problem):
        solver = CrossbarPDIPSolver(
            problem, rng=np.random.default_rng(0)
        )
        result = solver.solve(trace=True)
        for record in result.trace:
            assert 0.0 < record.theta <= 0.99

    def test_crossbar_trace_mu_tracks_gap(self, problem):
        settings = CrossbarSolverSettings()
        solver = CrossbarPDIPSolver(
            problem, settings, rng=np.random.default_rng(0)
        )
        result = solver.solve(trace=True)
        m, n = problem.A.shape
        for record in result.trace:
            # mu = delta * gap / (n + m) with the *pre-update* gap, so
            # it is bounded by delta times the running maximum gap.
            assert record.mu <= settings.delta * max(
                rec.duality_gap for rec in result.trace
            ) / (n + m) * 10

    def test_solver2_trace_constant_capped_theta(self, problem):
        from repro.core import ScalableSolverSettings

        settings = ScalableSolverSettings(constant_theta=0.5)
        solver = LargeScaleCrossbarPDIPSolver(
            problem, settings, rng=np.random.default_rng(0)
        )
        result = solver.solve(trace=True)
        for record in result.trace:
            assert record.theta <= 0.5 + 1e-12


class TestDualCertificates:
    def test_crossbar_duals_nearly_certify(self, problem):
        solver = CrossbarPDIPSolver(
            problem, rng=np.random.default_rng(1)
        )
        result = solver.solve()
        assert result.status is SolveStatus.OPTIMAL
        primal = problem.objective(result.x)
        dual = problem.dual_objective(result.y)
        # Weak duality within analog noise.
        assert dual >= primal - 0.05 * (1 + abs(primal))
        # Strong duality approximately.
        assert dual == pytest.approx(primal, rel=0.1, abs=0.5)

    def test_final_gap_small(self, problem):
        solver = CrossbarPDIPSolver(
            problem, rng=np.random.default_rng(1)
        )
        result = solver.solve()
        initial_gap = 2.0 * sum(problem.A.shape)
        assert result.duality_gap < 0.05 * initial_gap


class TestCounterConsistency:
    def test_write_latency_consistent_with_pulses(self, problem):
        settings = CrossbarSolverSettings()
        solver = CrossbarPDIPSolver(
            problem, settings, rng=np.random.default_rng(2)
        )
        result = solver.solve()
        counters = result.crossbar
        assert counters.write_latency_s == pytest.approx(
            counters.write_pulses * settings.device.write_pulse_width
        )

    def test_one_multiply_per_iteration_minimum(self, problem):
        solver = CrossbarPDIPSolver(
            problem, rng=np.random.default_rng(2)
        )
        result = solver.solve()
        assert result.crossbar.multiplies >= result.iterations

    def test_objective_matches_x(self, problem):
        solver = CrossbarPDIPSolver(
            problem, rng=np.random.default_rng(2)
        )
        result = solver.solve()
        assert result.objective == pytest.approx(
            problem.objective(result.x)
        )
