"""The recovery-ladder executor and its policy."""

import numpy as np
import pytest

from repro.core.problem import LinearProgram
from repro.core.result import FailureReason, SolveStatus, SolverResult
from repro.core.settings import CrossbarSolverSettings
from repro.reliability import (
    RecoveryPolicy,
    RecoveryAction,
    describe_attempts,
    run_digital_fallback,
    solve_with_recovery,
)


def _problem():
    return LinearProgram(
        c=np.array([3.0, 2.0]),
        A=np.array([[1.0, 1.0], [2.0, 0.5]]),
        b=np.array([4.0, 5.0]),
    )


def _result(status, reason=FailureReason.NONE, message=""):
    return SolverResult(
        status=status,
        x=np.zeros(2),
        y=np.zeros(2),
        w=np.zeros(2),
        z=np.zeros(2),
        objective=0.0,
        iterations=1,
        message=message,
        failure_reason=reason,
    )


class TestRecoveryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(reprograms=-1)
        with pytest.raises(ValueError):
            RecoveryPolicy(remaps=-1)
        with pytest.raises(ValueError):
            RecoveryPolicy(digital_fallback="quantum")

    def test_analog_attempts(self):
        policy = RecoveryPolicy(reprograms=2, remaps=3)
        assert policy.analog_attempts == 6

    def test_from_settings_is_paper_faithful(self):
        settings = CrossbarSolverSettings(retries=4)
        policy = RecoveryPolicy.from_settings(settings)
        assert policy.reprograms == 4
        assert policy.remaps == 0
        assert policy.digital_fallback is None
        assert policy.probe is None


class TestSolveWithRecovery:
    def test_first_attempt_success_returns_immediately(self):
        calls = []

        def attempt(rng, action):
            calls.append(rng)
            return _result(SolveStatus.OPTIMAL), None

        result = solve_with_recovery(
            attempt,
            RecoveryPolicy(reprograms=3, remaps=2, probe=None),
            _problem(),
            np.random.default_rng(0),
        )
        assert len(calls) == 1
        assert result.status is SolveStatus.OPTIMAL
        assert len(result.attempts) == 1
        assert result.attempts[0].action is RecoveryAction.INITIAL
        assert result.attempts[0].conclusive

    def test_retry_success_keeps_legacy_message(self):
        outcomes = iter(
            [
                _result(
                    SolveStatus.NUMERICAL_FAILURE,
                    FailureReason.SINGULAR_SYSTEM,
                ),
                _result(SolveStatus.OPTIMAL),
            ]
        )

        result = solve_with_recovery(
            lambda rng, action: (next(outcomes), None),
            RecoveryPolicy(reprograms=2, remaps=0, probe=None),
            _problem(),
            np.random.default_rng(0),
        )
        assert result.status is SolveStatus.OPTIMAL
        assert "retry" in result.message
        actions = [a.action for a in result.attempts]
        assert actions == [
            RecoveryAction.INITIAL,
            RecoveryAction.REPROGRAM,
        ]

    def test_ladder_schedule_reprogram_then_remap(self):
        actions_seen = []

        def attempt(rng, action):
            return (
                _result(
                    SolveStatus.NUMERICAL_FAILURE,
                    FailureReason.SINGULAR_SYSTEM,
                ),
                None,
            )

        result = solve_with_recovery(
            attempt,
            RecoveryPolicy(reprograms=2, remaps=1, probe=None),
            _problem(),
            np.random.default_rng(0),
        )
        actions_seen = [a.action for a in result.attempts]
        assert actions_seen == [
            RecoveryAction.INITIAL,
            RecoveryAction.REPROGRAM,
            RecoveryAction.REPROGRAM,
            RecoveryAction.REMAP,
        ]
        assert result.status is SolveStatus.NUMERICAL_FAILURE
        assert result.failure_reason is FailureReason.SINGULAR_SYSTEM

    def test_all_no_feasible_iterate_becomes_infeasible(self):
        def attempt(rng, action):
            return (
                _result(
                    SolveStatus.ITERATION_LIMIT,
                    FailureReason.NO_FEASIBLE_ITERATE,
                    "stalled without a feasible iterate",
                ),
                None,
            )

        result = solve_with_recovery(
            attempt,
            RecoveryPolicy(reprograms=1, remaps=0, probe=None),
            _problem(),
            np.random.default_rng(0),
        )
        assert result.status is SolveStatus.INFEASIBLE
        assert "A x <= alpha b" in result.message
        assert len(result.attempts) == 2

    def test_fallback_runs_after_analog_exhaustion(self):
        def attempt(rng, action):
            return (
                _result(
                    SolveStatus.NUMERICAL_FAILURE,
                    FailureReason.SINGULAR_SYSTEM,
                ),
                None,
            )

        result = solve_with_recovery(
            attempt,
            RecoveryPolicy(
                reprograms=1,
                remaps=0,
                probe=None,
                digital_fallback="scipy",
            ),
            _problem(),
            np.random.default_rng(0),
        )
        assert result.status is SolveStatus.OPTIMAL
        assert "digital fallback" in result.message
        last = result.attempts[-1]
        assert last.action is RecoveryAction.DIGITAL_FALLBACK
        assert last.seed is None
        assert len(result.attempts) == 3

    def test_seeds_recorded_and_deterministic(self):
        seen = []

        def attempt(rng, action):
            seen.append(int(rng.integers(0, 1000)))
            return (
                _result(
                    SolveStatus.NUMERICAL_FAILURE,
                    FailureReason.SINGULAR_SYSTEM,
                ),
                None,
            )

        policy = RecoveryPolicy(reprograms=2, remaps=0, probe=None)
        result = solve_with_recovery(
            attempt, policy, _problem(), np.random.default_rng(123)
        )
        seeds = [a.seed for a in result.attempts]
        assert all(s is not None for s in seeds)
        assert len(set(seeds)) == len(seeds)  # fresh seed per attempt
        # Replaying an attempt from its recorded seed reproduces the
        # same draw the attempt saw.
        replayed = [
            int(np.random.default_rng(s).integers(0, 1000)) for s in seeds
        ]
        assert replayed == seen

    def test_describe_attempts_renders_one_line_each(self):
        def attempt(rng, action):
            return _result(SolveStatus.OPTIMAL), None

        result = solve_with_recovery(
            attempt,
            RecoveryPolicy(probe=None),
            _problem(),
            np.random.default_rng(0),
        )
        text = describe_attempts(result.attempts)
        assert len(text.splitlines()) == len(result.attempts)
        assert "initial" in text


class TestDigitalFallback:
    def test_reference_solves(self):
        result = run_digital_fallback("reference", _problem())
        assert result.status is SolveStatus.OPTIMAL

    def test_scipy_solves(self):
        result = run_digital_fallback("scipy", _problem())
        assert result.status is SolveStatus.OPTIMAL
