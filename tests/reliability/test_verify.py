"""Write–verify programming: closed-loop read-back and re-pulsing."""

import numpy as np
import pytest

from repro.crossbar.array import CrossbarArray
from repro.crossbar.ops import AnalogMatrixOperator
from repro.devices.faults import StuckAtFaults
from repro.devices.models import HP_TIO2
from repro.devices.variation import NoVariation, UniformVariation
from repro.reliability import WriteVerifyPolicy


class TestWriteVerifyPolicy:
    def test_defaults(self):
        policy = WriteVerifyPolicy()
        assert 0.0 < policy.tolerance < 1.0
        assert policy.max_rounds >= 1

    @pytest.mark.parametrize("tolerance", [0.0, -0.1])
    def test_rejects_bad_tolerance(self, tolerance):
        with pytest.raises(ValueError):
            WriteVerifyPolicy(tolerance=tolerance)

    def test_rejects_bad_rounds(self):
        with pytest.raises(ValueError):
            WriteVerifyPolicy(max_rounds=0)


def _targets(rng, shape):
    lo, hi = HP_TIO2.g_off, HP_TIO2.g_on
    return rng.uniform(lo * 10, hi, size=shape)


class TestArrayWriteVerify:
    def test_disabled_reports_no_verify_activity(self):
        array = CrossbarArray(4, 4, rng=np.random.default_rng(0))
        report = array.program(_targets(np.random.default_rng(1), (4, 4)))
        assert report.verify_reads == 0
        assert report.repulsed_cells == 0
        assert report.unverified_cells == 0

    def test_ideal_hardware_verifies_first_read(self):
        array = CrossbarArray(
            4,
            4,
            variation=NoVariation(),
            rng=np.random.default_rng(0),
            write_verify=WriteVerifyPolicy(tolerance=0.05),
        )
        report = array.program(_targets(np.random.default_rng(1), (4, 4)))
        assert report.verify_reads == 16  # one read round, no re-pulses
        assert report.repulsed_cells == 0
        assert report.unverified_cells == 0

    def test_repulsing_tightens_soft_variation(self):
        rng = np.random.default_rng(7)
        targets = _targets(np.random.default_rng(1), (8, 8))
        policy = WriteVerifyPolicy(tolerance=0.05, max_rounds=12)
        array = CrossbarArray(
            8,
            8,
            variation=UniformVariation(0.2),
            rng=rng,
            write_verify=policy,
        )
        report = array.program(targets)
        assert report.repulsed_cells > 0  # 20% variation vs 5% tolerance
        assert report.verify_reads >= 2 * targets.size
        # Post-verify the array honours the tolerance except for the
        # cells the report declares unverified.
        deviation = np.abs(array.actual_conductances - targets)
        reference = np.maximum(np.abs(targets), HP_TIO2.g_off)
        bad = deviation > policy.tolerance * reference
        assert int(bad.sum()) == report.unverified_cells

    def test_repulses_cost_extra_pulses(self):
        targets = _targets(np.random.default_rng(1), (8, 8))
        open_loop = CrossbarArray(
            8, 8, variation=UniformVariation(0.2),
            rng=np.random.default_rng(3),
        )
        closed_loop = CrossbarArray(
            8, 8, variation=UniformVariation(0.2),
            rng=np.random.default_rng(3),
            write_verify=WriteVerifyPolicy(tolerance=0.05, max_rounds=12),
        )
        plain = open_loop.program(targets)
        verified = closed_loop.program(targets)
        assert verified.pulses > plain.pulses
        assert verified.energy_j > plain.energy_j
        assert verified.latency_s > plain.latency_s

    def test_stuck_cells_stay_unverified(self):
        # Re-pulsing must not "heal" a hard fault: stuck-OFF cells
        # commanded to a nonzero target remain out of tolerance.
        rng = np.random.default_rng(11)
        targets = _targets(np.random.default_rng(1), (10, 10))
        array = CrossbarArray(
            10,
            10,
            variation=StuckAtFaults(HP_TIO2, stuck_off_rate=0.2),
            rng=rng,
            write_verify=WriteVerifyPolicy(tolerance=0.05, max_rounds=5),
        )
        report = array.program(targets)
        stuck = int((array.actual_conductances == 0.0).sum())
        assert stuck > 0
        assert report.unverified_cells >= stuck

    def test_program_cells_also_verifies(self):
        array = CrossbarArray(
            6,
            6,
            variation=UniformVariation(0.2),
            rng=np.random.default_rng(5),
            write_verify=WriteVerifyPolicy(tolerance=0.05, max_rounds=12),
        )
        rows = np.arange(6)
        cols = np.arange(6)
        values = _targets(np.random.default_rng(2), (6,))
        report = array.program_cells(rows, cols, values)
        assert report.verify_reads >= rows.size

    def test_empty_cell_write_skips_verify(self):
        array = CrossbarArray(
            4,
            4,
            rng=np.random.default_rng(0),
            write_verify=WriteVerifyPolicy(),
        )
        report = array.program_cells(
            np.array([], dtype=int),
            np.array([], dtype=int),
            np.array([], dtype=float),
        )
        assert report.verify_reads == 0


class TestOperatorWriteVerify:
    def test_operator_forwards_policy(self):
        matrix = np.abs(np.random.default_rng(0).normal(size=(6, 6))) + 0.1
        operator = AnalogMatrixOperator(
            matrix,
            variation=UniformVariation(0.2),
            rng=np.random.default_rng(1),
            write_verify=WriteVerifyPolicy(tolerance=0.05, max_rounds=6),
        )
        report = operator.write_report
        assert report.verify_reads > 0

    def test_counters_flow_into_solver_result(self):
        from repro.core import CrossbarSolverSettings, solve_crossbar
        from repro.workloads import random_feasible_lp

        problem = random_feasible_lp(8, rng=np.random.default_rng(0))
        settings = CrossbarSolverSettings(
            variation=UniformVariation(0.1),
            write_verify=WriteVerifyPolicy(tolerance=0.05, max_rounds=4),
            retries=0,
        )
        result = solve_crossbar(
            problem, settings, rng=np.random.default_rng(1)
        )
        assert result.crossbar is not None
        assert result.crossbar.verify_reads > 0
