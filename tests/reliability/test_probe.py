"""Array health probes: known-vector multiplies vs the nominal product."""

import numpy as np
import pytest

from repro.crossbar.ops import AnalogMatrixOperator
from repro.devices.faults import StuckAtFaults
from repro.devices.models import YAKOPCIC_NAECON14
from repro.devices.variation import UniformVariation
from repro.reliability import (
    ProbePolicy,
    probe_operator,
    probe_operators,
    probe_operators_batched,
    probe_tolerance,
)


def _operator(variation=None, seed=0, n=8):
    matrix = np.abs(np.random.default_rng(42).normal(size=(n, n))) + 0.1
    kwargs = {}
    if variation is not None:
        kwargs["variation"] = variation
    return AnalogMatrixOperator(
        matrix,
        params=YAKOPCIC_NAECON14,
        rng=np.random.default_rng(seed),
        **kwargs,
    )


class TestProbePolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ProbePolicy(vectors=0)
        with pytest.raises(ValueError):
            ProbePolicy(margin=0.0)
        with pytest.raises(ValueError):
            ProbePolicy(min_tolerance=-1.0)
        with pytest.raises(ValueError):
            ProbePolicy(tolerance=0.0)


class TestProbeTolerance:
    def test_explicit_override_wins(self):
        operator = _operator()
        policy = ProbePolicy(tolerance=0.123)
        assert probe_tolerance(operator, policy) == 0.123

    def test_scales_with_variation_spec(self):
        quiet = probe_tolerance(
            _operator(UniformVariation(0.01)), ProbePolicy(min_tolerance=0.0)
        )
        noisy = probe_tolerance(
            _operator(UniformVariation(0.2)), ProbePolicy(min_tolerance=0.0)
        )
        assert noisy > quiet

    def test_floor_applies(self):
        policy = ProbePolicy(min_tolerance=0.5)
        assert probe_tolerance(_operator(), policy) == 0.5


class TestProbeOperator:
    def test_healthy_within_spec(self):
        operator = _operator(UniformVariation(0.1))
        report = probe_operator(
            operator, ProbePolicy(), np.random.default_rng(0), label="M"
        )
        assert report.healthy
        assert report.label == "M"
        assert report.vectors == 2
        assert report.max_rel_error <= report.tolerance

    def test_stuck_array_flagged(self):
        # A heavily faulted array deviates far beyond the soft-variation
        # spec and must be rejected.
        operator = _operator(
            StuckAtFaults(
                YAKOPCIC_NAECON14,
                stuck_off_rate=0.45,
                base=UniformVariation(0.05),
            ),
            seed=3,
        )
        report = probe_operator(
            operator, ProbePolicy(), np.random.default_rng(0)
        )
        assert not report.healthy
        assert report.max_rel_error > report.tolerance

    def test_vector_count_respected(self):
        operator = _operator(UniformVariation(0.05))
        report = probe_operator(
            operator, ProbePolicy(vectors=5), np.random.default_rng(0)
        )
        assert report.vectors == 5


class TestProbeOperators:
    def test_combined_report_sums_vectors(self):
        ops = [
            ("a", _operator(UniformVariation(0.05), seed=1)),
            ("b", _operator(UniformVariation(0.05), seed=2)),
        ]
        report = probe_operators(ops, ProbePolicy(), np.random.default_rng(0))
        assert report.vectors == 4
        assert report.healthy

    def test_one_bad_array_poisons_the_combined_verdict(self):
        ops = [
            ("good", _operator(UniformVariation(0.05), seed=1)),
            (
                "bad",
                _operator(
                    StuckAtFaults(
                        YAKOPCIC_NAECON14,
                        stuck_off_rate=0.45,
                        base=UniformVariation(0.05),
                    ),
                    seed=3,
                ),
            ),
        ]
        report = probe_operators(ops, ProbePolicy(), np.random.default_rng(0))
        assert not report.healthy
        assert report.label == "bad"

    def test_empty_iterable_rejected(self):
        with pytest.raises(ValueError):
            probe_operators([], ProbePolicy(), np.random.default_rng(0))


class TestProbeOperatorsBatched:
    def _fleet(self, count=4, n=8):
        return [
            (
                f"op-{k}",
                _operator(UniformVariation(0.05), seed=10 + k, n=n),
            )
            for k in range(count)
        ]

    def test_batched_reports_bitwise_match_serial(self):
        # Same policy, same rng seed: the batched pipeline must draw
        # probe vectors in member order and reproduce every serial
        # report exactly, including the rng stream position.
        policy = ProbePolicy(vectors=3)
        fleet_a = self._fleet()
        fleet_b = [
            (label, _operator(UniformVariation(0.05), seed=10 + k))
            for k, (label, _) in enumerate(fleet_a)
        ]
        rng_a = np.random.default_rng(77)
        rng_b = np.random.default_rng(77)
        batched = probe_operators_batched(fleet_a, policy, rng_a)
        serial = [
            probe_operator(op, policy, rng_b, label=label)
            for label, op in fleet_b
        ]
        assert batched == serial
        assert rng_a.integers(0, 2**63) == rng_b.integers(0, 2**63)

    def test_mixed_shapes_fall_back_bitwise(self):
        policy = ProbePolicy(vectors=2)
        fleet = self._fleet(2) + [
            ("odd", _operator(UniformVariation(0.05), seed=99, n=5))
        ]
        twin = self._fleet(2) + [
            ("odd", _operator(UniformVariation(0.05), seed=99, n=5))
        ]
        rng_a = np.random.default_rng(5)
        rng_b = np.random.default_rng(5)
        batched = probe_operators_batched(fleet, policy, rng_a)
        serial = [
            probe_operator(op, policy, rng_b, label=label)
            for label, op in twin
        ]
        assert batched == serial

    def test_faulty_member_flagged_individually(self):
        policy = ProbePolicy()
        fleet = self._fleet(2)
        fleet.append(
            (
                "bad",
                _operator(
                    StuckAtFaults(
                        YAKOPCIC_NAECON14,
                        stuck_off_rate=0.45,
                        base=UniformVariation(0.05),
                    ),
                    seed=3,
                ),
            )
        )
        reports = probe_operators_batched(
            fleet, policy, np.random.default_rng(0)
        )
        assert [r.healthy for r in reports[:2]] == [True, True]
        assert not reports[2].healthy
        assert reports[2].label == "bad"

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            probe_operators_batched([], ProbePolicy(), np.random.default_rng(0))
