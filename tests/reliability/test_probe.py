"""Array health probes: known-vector multiplies vs the nominal product."""

import numpy as np
import pytest

from repro.crossbar.ops import AnalogMatrixOperator
from repro.devices.faults import StuckAtFaults
from repro.devices.models import YAKOPCIC_NAECON14
from repro.devices.variation import UniformVariation
from repro.reliability import (
    ProbePolicy,
    probe_operator,
    probe_operators,
    probe_tolerance,
)


def _operator(variation=None, seed=0, n=8):
    matrix = np.abs(np.random.default_rng(42).normal(size=(n, n))) + 0.1
    kwargs = {}
    if variation is not None:
        kwargs["variation"] = variation
    return AnalogMatrixOperator(
        matrix,
        params=YAKOPCIC_NAECON14,
        rng=np.random.default_rng(seed),
        **kwargs,
    )


class TestProbePolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ProbePolicy(vectors=0)
        with pytest.raises(ValueError):
            ProbePolicy(margin=0.0)
        with pytest.raises(ValueError):
            ProbePolicy(min_tolerance=-1.0)
        with pytest.raises(ValueError):
            ProbePolicy(tolerance=0.0)


class TestProbeTolerance:
    def test_explicit_override_wins(self):
        operator = _operator()
        policy = ProbePolicy(tolerance=0.123)
        assert probe_tolerance(operator, policy) == 0.123

    def test_scales_with_variation_spec(self):
        quiet = probe_tolerance(
            _operator(UniformVariation(0.01)), ProbePolicy(min_tolerance=0.0)
        )
        noisy = probe_tolerance(
            _operator(UniformVariation(0.2)), ProbePolicy(min_tolerance=0.0)
        )
        assert noisy > quiet

    def test_floor_applies(self):
        policy = ProbePolicy(min_tolerance=0.5)
        assert probe_tolerance(_operator(), policy) == 0.5


class TestProbeOperator:
    def test_healthy_within_spec(self):
        operator = _operator(UniformVariation(0.1))
        report = probe_operator(
            operator, ProbePolicy(), np.random.default_rng(0), label="M"
        )
        assert report.healthy
        assert report.label == "M"
        assert report.vectors == 2
        assert report.max_rel_error <= report.tolerance

    def test_stuck_array_flagged(self):
        # A heavily faulted array deviates far beyond the soft-variation
        # spec and must be rejected.
        operator = _operator(
            StuckAtFaults(
                YAKOPCIC_NAECON14,
                stuck_off_rate=0.45,
                base=UniformVariation(0.05),
            ),
            seed=3,
        )
        report = probe_operator(
            operator, ProbePolicy(), np.random.default_rng(0)
        )
        assert not report.healthy
        assert report.max_rel_error > report.tolerance

    def test_vector_count_respected(self):
        operator = _operator(UniformVariation(0.05))
        report = probe_operator(
            operator, ProbePolicy(vectors=5), np.random.default_rng(0)
        )
        assert report.vectors == 5


class TestProbeOperators:
    def test_combined_report_sums_vectors(self):
        ops = [
            ("a", _operator(UniformVariation(0.05), seed=1)),
            ("b", _operator(UniformVariation(0.05), seed=2)),
        ]
        report = probe_operators(ops, ProbePolicy(), np.random.default_rng(0))
        assert report.vectors == 4
        assert report.healthy

    def test_one_bad_array_poisons_the_combined_verdict(self):
        ops = [
            ("good", _operator(UniformVariation(0.05), seed=1)),
            (
                "bad",
                _operator(
                    StuckAtFaults(
                        YAKOPCIC_NAECON14,
                        stuck_off_rate=0.45,
                        base=UniformVariation(0.05),
                    ),
                    seed=3,
                ),
            ),
        ]
        report = probe_operators(ops, ProbePolicy(), np.random.default_rng(0))
        assert not report.healthy
        assert report.label == "bad"

    def test_empty_iterable_rejected(self):
        with pytest.raises(ValueError):
            probe_operators([], ProbePolicy(), np.random.default_rng(0))
