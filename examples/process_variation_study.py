"""Process-variation robustness study (a miniature of Fig. 5).

Run:  python examples/process_variation_study.py

Sweeps the variation level 0-20% for both crossbar solvers over a
batch of random LPs and prints the relative-error tables — the
experiment behind the paper's headline claim that "even for up to 20%
process variation, relative error can be as low as 1%".
"""

from repro.experiments import (
    SweepConfig,
    accuracy_sweep,
    render_accuracy,
)


def main():
    config = SweepConfig(
        sizes=(16, 48),
        variations=(0, 5, 10, 20),
        trials=5,
        seed=2016,
    )
    print("Sweep grid:", config)
    for solver, figure in (("crossbar", "5(a)"), ("large_scale", "5(b)")):
        rows = accuracy_sweep(solver, config)
        print(f"\n=== Fig. {figure}: {solver} ===")
        print(render_accuracy(rows))
    print(
        "\nPaper bands: 0.2%-9.9% (Solver 1), 0.8%-8.5% (Solver 2); "
        "errors grow with variation and shrink with size."
    )


if __name__ == "__main__":
    main()
