"""Scale-out across NoC-coordinated crossbar tiles (Fig. 3).

Run:  python examples/large_scale_noc.py

A 96x96 matrix does not fit a 32x32 crossbar tile; this example splits
it across a 3x3 tile grid, runs the analog multiply with both NoC
topologies the paper sketches (hierarchical and mesh), and solves a
block-dominant system by analog iterative refinement — comparing
accuracy and communication cost.
"""

import numpy as np

from repro.analysis import render_table
from repro.devices import UniformVariation, YAKOPCIC_NAECON14
from repro.noc import HierarchicalNoc, MeshNoc, TiledMatrixOperator

N = 96
TILE = 32


def build(topology_cls, matrix, rng):
    grid = -(-N // TILE)
    return TiledMatrixOperator(
        matrix,
        TILE,
        params=YAKOPCIC_NAECON14,
        variation=UniformVariation(0.05),
        rng=rng,
        topology=topology_cls(grid, grid),
    )


def main():
    rng = np.random.default_rng(4)
    matrix = rng.uniform(0.1, 1.0, size=(N, N))
    x = rng.uniform(-1, 1, size=N)
    reference = matrix @ x

    rows = []
    for name, cls in (("mesh", MeshNoc), ("hierarchical",
                                          HierarchicalNoc)):
        op = build(cls, matrix, np.random.default_rng(0))
        y = op.multiply(x)
        error = float(
            np.max(np.abs(y - reference)) / np.max(np.abs(reference))
        )
        rows.append(
            [
                name,
                op.n_tiles,
                op.noc_transfers,
                op.noc_latency_s * 1e9,
                op.noc_energy_j * 1e12,
                error,
            ]
        )
    print(f"Tiled multiply: {N}x{N} matrix on {TILE}x{TILE} tiles")
    print(
        render_table(
            [
                "topology",
                "tiles",
                "transfers",
                "latency_ns",
                "energy_pJ",
                "rel_err",
            ],
            rows,
        )
    )

    # Analog iterative refinement: block-diagonally dominant system.
    system = rng.uniform(0.0, 0.15, size=(N, N)) + np.diag(
        np.full(N, 6.0)
    )
    b = rng.uniform(-1, 1, size=N)
    op = build(MeshNoc, system, np.random.default_rng(1))
    solution = op.solve(b)
    exact = np.linalg.solve(system, b)
    error = float(np.max(np.abs(solution - exact)) / np.max(np.abs(exact)))
    print(
        f"\nTiled solve (block-preconditioned refinement): "
        f"relative error {error:.2%} using {op.tile_solves} diagonal-"
        f"tile solves and {op.multiplies} tiled multiplies"
    )


if __name__ == "__main__":
    main()
