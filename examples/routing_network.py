"""Routing on the crossbar: maximum flow and multicommodity demand.

Run:  python examples/routing_network.py

The paper's introduction motivates LP solving with routing problems.
This example builds a random capacitated network, formulates the
max-flow LP and a two-commodity routing LP, solves them on the
simulated crossbar (with 10% process variation) and checks the flow
value against networkx's exact combinatorial algorithm.
"""

import networkx as nx
import numpy as np

from repro import CrossbarSolverSettings, UniformVariation, solve_crossbar
from repro.baselines import solve_scipy
from repro.workloads import (
    flow_value,
    max_flow_lp,
    multicommodity_routing_lp,
    random_routing_network,
)


def main():
    rng = np.random.default_rng(7)
    graph = random_routing_network(8, rng=rng)
    source, sink = 0, 7
    print(
        f"Network: {graph.number_of_nodes()} nodes, "
        f"{graph.number_of_edges()} edges"
    )

    # --- single-commodity max flow --------------------------------
    problem, edges = max_flow_lp(graph, source, sink)
    print(
        f"Max-flow LP: {problem.n_variables} variables, "
        f"{problem.n_constraints} constraints"
    )
    exact = nx.maximum_flow_value(graph, source, sink)
    settings = CrossbarSolverSettings(variation=UniformVariation(0.10))
    result = solve_crossbar(
        problem, settings, rng=np.random.default_rng(0)
    )
    analog_flow = flow_value(result.x, edges, graph, source)
    print(f"  exact max flow (networkx):   {exact:.4f}")
    print(
        f"  crossbar @10% variation:     {analog_flow:.4f} "
        f"({result.status}, {result.iterations} iterations, "
        f"error {abs(analog_flow - exact) / exact:.2%})"
    )

    # Busiest edges under the analog solution.
    flows = sorted(
        ((result.x[j], e) for e, j in edges.items()), reverse=True
    )
    print("  busiest edges:")
    for value, edge in flows[:4]:
        cap = graph.edges[edge]["capacity"]
        print(f"    {edge}: flow {value:6.3f} / capacity {cap:6.3f}")

    # --- two commodities sharing capacity -------------------------
    demands = [(0, 7, 1.0), (2, 6, 2.0)]
    mc_problem, _ = multicommodity_routing_lp(graph, demands)
    print(
        f"\nMulticommodity LP ({len(demands)} commodities): "
        f"{mc_problem.n_variables} variables, "
        f"{mc_problem.n_constraints} constraints"
    )
    truth = solve_scipy(mc_problem)
    # Network polytopes are highly degenerate (many near-active
    # conservation rows); the analog solver creeps near the boundary,
    # so give it a longer stall window than the default.
    mc_settings = CrossbarSolverSettings(
        variation=UniformVariation(0.10), stall_iterations=60
    )
    analog = solve_crossbar(
        mc_problem, mc_settings, rng=np.random.default_rng(1)
    )
    print(f"  scipy optimum:            {truth.objective:.4f}")
    print(
        f"  crossbar @10% variation:  {analog.objective:.4f} "
        f"({analog.status}, error "
        f"{abs(analog.objective - truth.objective) / truth.objective:.2%})"
    )


if __name__ == "__main__":
    main()
