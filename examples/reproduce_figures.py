"""Regenerate any of the paper's figures/tables from the command line.

Usage:
    python examples/reproduce_figures.py fig5a [--paper-scale]
    python examples/reproduce_figures.py fig5b fig6a fig7b --workers 4
    python examples/reproduce_figures.py all --workers 4 --cache-dir .sweeps

Targets: fig5a fig5b fig6a fig6b fig7a fig7b infeasibility all

``--paper-scale`` runs the full Section 4.2 grid (constraints to 1024,
100 trials per cell); the default grid preserves every figure's shape
in minutes.  ``--workers N`` fans the grid out to N processes with
bit-identical tables; ``--cache-dir`` keeps a per-target JSONL cell
cache so an interrupted (paper-scale) run resumes instead of
restarting.  Run with ``--help`` for a walkthrough mapping each paper
figure to its experiment module and CLI entry point.
"""

import argparse
from pathlib import Path

from repro.experiments import (
    SweepConfig,
    accuracy_sweep,
    energy_sweep,
    infeasibility_sweep,
    latency_sweep,
    paper_scale,
    render_accuracy,
    render_energy,
    render_infeasibility,
    render_latency,
)

TARGETS = {
    "fig5a": ("accuracy", "crossbar"),
    "fig5b": ("accuracy", "large_scale"),
    "fig6a": ("latency", "crossbar"),
    "fig6b": ("latency", "large_scale"),
    "fig7a": ("energy", "crossbar"),
    "fig7b": ("energy", "large_scale"),
    "infeasibility": ("infeasibility", "crossbar"),
}

RUNNERS = {
    "accuracy": (accuracy_sweep, render_accuracy),
    "latency": (latency_sweep, render_latency),
    "energy": (energy_sweep, render_energy),
    "infeasibility": (infeasibility_sweep, render_infeasibility),
}

WALKTHROUGH = """\
walkthrough — paper figure -> module -> invocation:

  fig5a / fig5b (accuracy, Fig. 5).  repro/experiments/accuracy.py
  solves random feasible LPs on Solver 1 (fig5a) or Solver 2 (fig5b)
  and reports relative error against scipy HiGHS (the paper's Matlab
  linprog stand-in).  Equivalent CLI:
  `python -m repro sweep accuracy --solver crossbar|large_scale`.

  fig6a / fig6b (latency, Fig. 6).  repro/experiments/latency.py
  prices each solve's measured iteration/write counters with the
  device + periphery cost model (repro/costmodel/latency.py) and
  compares against the anchored CPU models.  Equivalent CLI:
  `python -m repro sweep latency --solver crossbar|large_scale`.

  fig7a / fig7b (energy, Fig. 7).  repro/experiments/energy.py —
  same methodology priced in joules (repro/costmodel/energy.py), CPU
  side at the paper-implied ~35 W.  Equivalent CLI:
  `python -m repro sweep energy --solver crossbar|large_scale`.

  infeasibility (Section 4.4).  repro/experiments/infeasibility.py
  plants contradictory constraints and measures how fast the big-M
  divergence certificate fires — the paper's 113x headline.
  Equivalent CLI: `python -m repro sweep infeasibility`.

  All four run on the sweep engine (repro/experiments/engine.py):
  deterministic per-cell seeding means any --workers count produces
  bit-identical tables, and a --cache-dir cell cache makes long runs
  resumable.  The parasitics study (`python -m repro parasitics`) and
  the NoC comparison (benchmarks/bench_noc.py) have no sweep grid and
  run separately.
"""


def main():
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's figures as text tables.",
        epilog=WALKTHROUGH,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "targets",
        nargs="+",
        choices=sorted(TARGETS) + ["all"],
        help="figures to regenerate",
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="run the full Section 4.2 grid (slow)",
    )
    parser.add_argument(
        "--trials", type=int, default=None,
        help="override trials per cell",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="process-pool width (tables identical at any count)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="keep per-target cell caches here; re-runs resume",
    )
    args = parser.parse_args()

    config = paper_scale() if args.paper_scale else SweepConfig()
    if args.trials is not None:
        config = SweepConfig(
            sizes=config.sizes,
            variations=config.variations,
            trials=args.trials,
            seed=config.seed,
        )

    targets = (
        sorted(TARGETS) if "all" in args.targets else args.targets
    )
    for target in targets:
        experiment, solver = TARGETS[target]
        sweep, render = RUNNERS[experiment]
        cache = None
        if args.cache_dir:
            cache_dir = Path(args.cache_dir)
            cache_dir.mkdir(parents=True, exist_ok=True)
            cache = cache_dir / f"{target}.cells.jsonl"
        print(f"\n=== {target} ({experiment}, {solver}) ===")
        print(
            render(
                sweep(
                    solver,
                    config,
                    workers=args.workers,
                    cache_path=cache,
                )
            )
        )


if __name__ == "__main__":
    main()
