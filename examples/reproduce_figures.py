"""Regenerate any of the paper's figures/tables from the command line.

Usage:
    python examples/reproduce_figures.py fig5a [--paper-scale]
    python examples/reproduce_figures.py fig5b fig6a fig7b
    python examples/reproduce_figures.py all

Targets: fig5a fig5b fig6a fig6b fig7a fig7b infeasibility all

``--paper-scale`` runs the full Section 4.2 grid (constraints to 1024,
100 trials per cell) — hours of simulation; the default grid preserves
every figure's shape in minutes.
"""

import argparse

from repro.experiments import (
    SweepConfig,
    accuracy_sweep,
    energy_sweep,
    infeasibility_sweep,
    latency_sweep,
    paper_scale,
    render_accuracy,
    render_energy,
    render_infeasibility,
    render_latency,
)

TARGETS = {
    "fig5a": ("accuracy", "crossbar"),
    "fig5b": ("accuracy", "large_scale"),
    "fig6a": ("latency", "crossbar"),
    "fig6b": ("latency", "large_scale"),
    "fig7a": ("energy", "crossbar"),
    "fig7b": ("energy", "large_scale"),
    "infeasibility": ("infeasibility", "crossbar"),
}

RUNNERS = {
    "accuracy": (accuracy_sweep, render_accuracy),
    "latency": (latency_sweep, render_latency),
    "energy": (energy_sweep, render_energy),
    "infeasibility": (infeasibility_sweep, render_infeasibility),
}


def main():
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's figures as text tables."
    )
    parser.add_argument(
        "targets",
        nargs="+",
        choices=sorted(TARGETS) + ["all"],
        help="figures to regenerate",
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="run the full Section 4.2 grid (slow)",
    )
    parser.add_argument(
        "--trials", type=int, default=None,
        help="override trials per cell",
    )
    args = parser.parse_args()

    config = paper_scale() if args.paper_scale else SweepConfig()
    if args.trials is not None:
        config = SweepConfig(
            sizes=config.sizes,
            variations=config.variations,
            trials=args.trials,
            seed=config.seed,
        )

    targets = (
        sorted(TARGETS) if "all" in args.targets else args.targets
    )
    for target in targets:
        experiment, solver = TARGETS[target]
        sweep, render = RUNNERS[experiment]
        print(f"\n=== {target} ({experiment}, {solver}) ===")
        print(render(sweep(solver, config)))


if __name__ == "__main__":
    main()
