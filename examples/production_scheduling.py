"""Scheduling on the crossbar: product mix and machine assignment.

Run:  python examples/production_scheduling.py

The paper's second motivating domain.  Solves a product-mix planning
LP and a fractional machine-scheduling LP with both crossbar solvers,
then prices the analog runs with the device cost model — the same
latency/energy methodology behind the paper's Figs. 6-7.
"""

import numpy as np

from repro import (
    CrossbarSolverSettings,
    ScalableSolverSettings,
    UniformVariation,
    solve_crossbar,
    solve_crossbar_large_scale,
)
from repro.baselines import solve_scipy
from repro.costmodel import estimate_energy, estimate_latency
from repro.workloads import machine_scheduling_lp, production_planning_lp


def main():
    rng = np.random.default_rng(21)

    # --- product-mix planning --------------------------------------
    planning = production_planning_lp(8, 5, rng=rng)
    truth = solve_scipy(planning)
    settings1 = CrossbarSolverSettings(
        variation=UniformVariation(0.10)
    )
    result = solve_crossbar(
        planning, settings1, rng=np.random.default_rng(0)
    )
    print(f"Product mix ({planning.name}):")
    print(f"  scipy optimum profit:    {truth.objective:.4f}")
    print(
        f"  crossbar @10% variation: {result.objective:.4f} "
        f"(error "
        f"{abs(result.objective - truth.objective) / truth.objective:.2%})"
    )
    quantities = ", ".join(f"{v:.2f}" for v in result.x)
    print(f"  production quantities:   ({quantities})")

    latency = estimate_latency(result, settings1.device)
    energy = estimate_energy(result, settings1.device)
    print(
        f"  modeled hardware cost:   {latency.total_s * 1e6:.1f} us "
        f"({latency.write_s * 1e6:.1f} us writes), "
        f"{energy.total_j * 1e6:.1f} uJ"
    )

    # --- machine scheduling (Solver 2) ------------------------------
    scheduling, times = machine_scheduling_lp(6, 3, rng=rng)
    truth = solve_scipy(scheduling)
    settings2 = ScalableSolverSettings(
        variation=UniformVariation(0.10)
    )
    result = solve_crossbar_large_scale(
        scheduling, settings2, rng=np.random.default_rng(1)
    )
    print(f"\nMachine scheduling ({scheduling.name}):")
    print(f"  scipy optimum weighted work: {truth.objective:.4f}")
    print(
        f"  Solver 2 @10% variation:     {result.objective:.4f} "
        f"(error "
        f"{abs(result.objective - truth.objective) / truth.objective:.2%}, "
        f"{result.iterations} iterations)"
    )
    fractions = result.x.reshape(6, 3)
    busy = (np.maximum(fractions, 0.0) * times).sum(axis=0)
    for k, hours in enumerate(busy):
        print(f"  machine {k}: busy {hours:.2f} h of 8.00 h")


if __name__ == "__main__":
    main()
