"""Quickstart: solve a small LP on the simulated memristor crossbar.

Run:  python examples/quickstart.py

Builds a 3-variable production problem, solves it with the software
PDIP reference, Solver 1 (the crossbar PDIP of Algorithm 1), and
Solver 2 (the large-scale split solver of Algorithm 2), under ideal
hardware and under 10% process variation, and prints the comparison.
"""

import numpy as np

from repro import (
    CrossbarSolverSettings,
    LinearProgram,
    ScalableSolverSettings,
    UniformVariation,
    solve_crossbar,
    solve_crossbar_large_scale,
    solve_reference,
)

# maximize 5 x1 + 4 x2 + 3 x3
# s.t.     2 x1 + 3 x2 +   x3 <= 5
#          4 x1 +   x2 + 2 x3 <= 11
#          3 x1 + 4 x2 + 2 x3 <= 8
#          x >= 0          (optimum: x = (2, 0, 1), value 13)
problem = LinearProgram(
    c=np.array([5.0, 4.0, 3.0]),
    A=np.array(
        [
            [2.0, 3.0, 1.0],
            [4.0, 1.0, 2.0],
            [3.0, 4.0, 2.0],
        ]
    ),
    b=np.array([5.0, 11.0, 8.0]),
    name="quickstart",
)


def report(label, result):
    x = ", ".join(f"{v:.3f}" for v in result.x)
    print(
        f"{label:32s} status={result.status!s:10s} "
        f"objective={result.objective:8.4f}  x=({x})  "
        f"iterations={result.iterations}"
    )


def main():
    print(f"Problem: {problem}")
    print("Known optimum: x = (2, 0, 1), objective = 13\n")

    report("software PDIP", solve_reference(problem))
    report(
        "Solver 1 (ideal hardware)",
        solve_crossbar(problem, rng=np.random.default_rng(0)),
    )
    report(
        "Solver 1 (10% variation)",
        solve_crossbar(
            problem,
            CrossbarSolverSettings(variation=UniformVariation(0.10)),
            rng=np.random.default_rng(1),
        ),
    )
    report(
        "Solver 2 (ideal hardware)",
        solve_crossbar_large_scale(
            problem, rng=np.random.default_rng(2)
        ),
    )
    report(
        "Solver 2 (10% variation)",
        solve_crossbar_large_scale(
            problem,
            ScalableSolverSettings(variation=UniformVariation(0.10)),
            rng=np.random.default_rng(3),
        ),
    )

    result = solve_crossbar(problem, rng=np.random.default_rng(0))
    counters = result.crossbar
    print(
        f"\nCrossbar activity (Solver 1, ideal): "
        f"{counters.multiplies} analog multiplies, "
        f"{counters.solves} analog solves, "
        f"{counters.cells_written} cells written "
        f"({counters.write_pulses} pulses)."
    )


if __name__ == "__main__":
    main()
